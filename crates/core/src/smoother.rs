//! Smoothers (§3.2): hybrid Gauss-Seidel in baseline (Fig. 2a) and
//! optimized (Fig. 2b) forms, weighted Jacobi, lexicographic GS with
//! level scheduling, and multi-color GS.
//!
//! Hybrid GS performs true Gauss-Seidel within each parallel task and
//! Jacobi across tasks: each half-sweep snapshots `x` into a temporary
//! buffer, own-task columns are read live from `x`, other-task columns
//! from the snapshot (honouring the write-after-read dependency across
//! tasks). C-F relaxation smooths coarse points then fine points in
//! pre-smoothing and the reverse in post-smoothing.
#![deny(unsafe_op_in_unsafe_fn)]

use crate::reorder::{GsPartition, ThreadOwnership};
use famg_sparse::{Csr, MultiVec};
use rayon::prelude::*;
use std::ops::Range;

/// Reusable scratch buffers for smoothing (one per solve context).
#[derive(Debug, Default)]
pub struct Workspace {
    temp: Vec<f64>,
    /// Snapshot buffer for the k-wide batched sweeps (`n * k` lanes).
    temp_batch: Vec<f64>,
    /// Column-extraction scratch for the batched fallback path.
    col_b: Vec<f64>,
    /// Column-extraction scratch for the batched fallback path.
    col_x: Vec<f64>,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on demand.
    pub fn new() -> Self {
        Workspace::default()
    }

    fn temp(&mut self, n: usize) -> &mut Vec<f64> {
        if self.temp.len() < n {
            self.temp.resize(n, 0.0);
        }
        &mut self.temp
    }

    fn temp_batch(&mut self, n: usize) -> &mut Vec<f64> {
        if self.temp_batch.len() < n {
            self.temp_batch.resize(n, 0.0);
        }
        &mut self.temp_batch
    }
}

/// Raw shared pointer for disjoint-by-ownership writes to `x` across
/// scoped threads.
struct XPtr(*mut f64);
// SAFETY: every kernel sharing an XPtr across threads partitions the
// row indices so no element is written by more than one thread, and no
// element is read by one thread while written by another within a
// parallel phase (own-block reads are live, cross-block reads go
// through a snapshot).
unsafe impl Sync for XPtr {}

/// Which point class a half-sweep processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// All rows.
    All,
    /// Coarse rows only.
    Coarse,
    /// Fine rows only.
    Fine,
}

/// A smoother instance bound to one multigrid level's matrix.
#[derive(Debug)]
pub enum Smoother {
    /// Weighted Jacobi.
    Jacobi {
        /// Reciprocal diagonal.
        dinv: Vec<f64>,
        /// Damping factor (2/3 is standard for Laplacians).
        omega: f64,
    },
    /// Baseline hybrid GS (Fig. 2a): unreordered matrix, per-row class
    /// branch, per-nonzero ownership branch.
    HybridBase {
        /// Reciprocal diagonal.
        dinv: Vec<f64>,
        /// Contiguous row range per parallel task.
        ranges: Vec<Range<usize>>,
        /// C/F marker in this matrix's row ordering.
        is_coarse: Vec<bool>,
    },
    /// Optimized hybrid GS (Fig. 2b): CF-permuted matrix with rows
    /// pre-partitioned into `[diag | own-lower | own-upper | ext]`.
    HybridOpt {
        /// Row partition and ownership data built by
        /// [`crate::reorder::partition_rows_gs`].
        part: GsPartition,
        /// Number of coarse rows (first `nc` rows).
        nc: usize,
    },
    /// Lexicographic GS parallelized by level scheduling (exactly
    /// reproduces the sequential GS iterate for symmetric patterns).
    Lex {
        /// Reciprocal diagonal.
        dinv: Vec<f64>,
        /// Wavefronts of mutually independent rows, in sweep order.
        levels: Vec<Vec<usize>>,
    },
    /// Multi-color GS: rows grouped by graph color; colors swept in
    /// order, rows within a color relaxed in parallel.
    Multicolor {
        /// Reciprocal diagonal.
        dinv: Vec<f64>,
        /// Rows per color, in sweep order.
        colors: Vec<Vec<usize>>,
    },
    /// ℓ1-Jacobi (reference \[26\]): unconditionally convergent on SPD
    /// systems for any task count.
    L1Jacobi(crate::smoother_ext::L1Jacobi),
    /// ℓ1-scaled hybrid Gauss-Seidel (reference \[26\]).
    L1HybridGs(crate::smoother_ext::L1HybridGs),
    /// Chebyshev polynomial smoothing (reference \[26\]).
    Chebyshev(crate::smoother_ext::Chebyshev),
}

fn diag_inv(a: &Csr) -> Vec<f64> {
    (0..a.nrows())
        .map(|i| {
            let d = a.diag(i);
            assert!(d != 0.0, "zero diagonal in row {i}");
            1.0 / d
        })
        .collect()
}

impl Smoother {
    /// Weighted Jacobi smoother.
    pub fn jacobi(a: &Csr, omega: f64) -> Self {
        Smoother::Jacobi {
            dinv: diag_inv(a),
            omega,
        }
    }

    /// Baseline hybrid GS over `nthreads` contiguous row blocks.
    pub fn hybrid_base(a: &Csr, is_coarse: Vec<bool>, nthreads: usize) -> Self {
        assert_eq!(is_coarse.len(), a.nrows());
        Smoother::HybridBase {
            dinv: diag_inv(a),
            ranges: famg_sparse::partition::split_rows_by_nnz(a.rowptr(), nthreads),
            is_coarse,
        }
    }

    /// Optimized hybrid GS: reorders `a`'s rows in place (Fig. 2b
    /// partition) against a fresh [`ThreadOwnership`].
    pub fn hybrid_opt(a: &mut Csr, nc: usize, nthreads: usize) -> Self {
        let own = ThreadOwnership::build(a, nc, nthreads);
        let part = crate::reorder::partition_rows_gs(a, nc, &own);
        Smoother::HybridOpt { part, nc }
    }

    /// Lexicographic GS with level scheduling.
    pub fn lexicographic(a: &Csr) -> Self {
        let n = a.nrows();
        let at = famg_sparse::transpose::transpose(a);
        let mut level = vec![0usize; n];
        let mut max_level = 0usize;
        for i in 0..n {
            let mut l = 0usize;
            for &j in a.row_cols(i).iter().chain(at.row_cols(i)) {
                if j < i {
                    l = l.max(level[j] + 1);
                }
            }
            level[i] = l;
            max_level = max_level.max(l);
        }
        let mut levels = vec![Vec::new(); max_level + 1];
        for i in 0..n {
            levels[level[i]].push(i);
        }
        Smoother::Lex {
            dinv: diag_inv(a),
            levels,
        }
    }

    /// Multi-color GS via greedy coloring of the symmetrized pattern.
    pub fn multicolor(a: &Csr) -> Self {
        let n = a.nrows();
        let at = famg_sparse::transpose::transpose(a);
        let mut color = vec![usize::MAX; n];
        let mut ncolors = 0usize;
        let mut used: Vec<bool> = Vec::new();
        for i in 0..n {
            used.clear();
            used.resize(ncolors, false);
            for &j in a.row_cols(i).iter().chain(at.row_cols(i)) {
                if j != i && color[j] != usize::MAX {
                    used[color[j]] = true;
                }
            }
            let c = used.iter().position(|&u| !u).unwrap_or(ncolors);
            if c == ncolors {
                ncolors += 1;
            }
            color[i] = c;
        }
        let mut colors = vec![Vec::new(); ncolors];
        for i in 0..n {
            colors[color[i]].push(i);
        }
        Smoother::Multicolor {
            dinv: diag_inv(a),
            colors,
        }
    }

    /// Number of wavefronts / colors, where applicable (setup diagnostics).
    pub fn num_phases(&self) -> usize {
        match self {
            Smoother::Lex { levels, .. } => levels.len(),
            Smoother::Multicolor { colors, .. } => colors.len(),
            _ => 1,
        }
    }

    /// Pre-smoothing: C then F relaxation (Jacobi/Lex/Multicolor do full
    /// sweeps). `x_is_zero` enables the zero-initial-guess skip in the
    /// optimized hybrid kernel (§3.2).
    pub fn pre_smooth(
        &self,
        a: &Csr,
        b: &[f64],
        x: &mut [f64],
        ws: &mut Workspace,
        x_is_zero: bool,
    ) {
        match self {
            Smoother::HybridBase { .. } => {
                self.sweep(a, b, x, ws, Class::Coarse, false);
                self.sweep(a, b, x, ws, Class::Fine, false);
            }
            Smoother::HybridOpt { .. } => {
                self.sweep(a, b, x, ws, Class::Coarse, x_is_zero);
                self.sweep(a, b, x, ws, Class::Fine, false);
            }
            _ => self.sweep(a, b, x, ws, Class::All, false),
        }
    }

    /// Post-smoothing: F then C relaxation.
    pub fn post_smooth(&self, a: &Csr, b: &[f64], x: &mut [f64], ws: &mut Workspace) {
        match self {
            Smoother::HybridBase { .. } | Smoother::HybridOpt { .. } => {
                self.sweep(a, b, x, ws, Class::Fine, false);
                self.sweep(a, b, x, ws, Class::Coarse, false);
            }
            _ => self.sweep(a, b, x, ws, Class::All, false),
        }
    }

    /// One half-sweep over the given class.
    pub fn sweep(
        &self,
        a: &Csr,
        b: &[f64],
        x: &mut [f64],
        ws: &mut Workspace,
        class: Class,
        x_is_zero: bool,
    ) {
        let n = a.nrows();
        assert_eq!(b.len(), n); // PANIC-FREE: shape asserts guard caller contract violations at the public smoother boundary (checked once per sweep).
        assert_eq!(x.len(), n); // PANIC-FREE: see above.
        match self {
            Smoother::Jacobi { dinv, omega } => {
                let temp = ws.temp(n);
                temp[..n].copy_from_slice(x);
                let temp = &temp[..n];
                // Row relaxations are a few flops each: keep blocks coarse
                // enough that block bookkeeping stays negligible.
                x.par_iter_mut()
                    .enumerate()
                    .with_min_len(512)
                    .for_each(|(i, xi)| {
                        let mut acc = b[i];
                        for (c, v) in a.row_iter(i) {
                            acc -= v * temp[c];
                        }
                        *xi = temp[i] + omega * dinv[i] * acc;
                    });
            }
            Smoother::HybridBase {
                dinv,
                ranges,
                is_coarse,
            } => {
                let temp = ws.temp(n);
                temp[..n].copy_from_slice(x);
                let temp = &temp[..n];
                let p = XPtr(x.as_mut_ptr());
                rayon::scope(|s| {
                    for r in ranges {
                        let r = r.clone(); // ALLOC: `Range` clone is a stack copy, no heap
                        let p = &p;
                        s.spawn(move |_| {
                            // ALLOC: `Range` clone is a stack copy, no heap
                            for i in r.clone() {
                                let keep = match class {
                                    Class::All => true,
                                    Class::Coarse => is_coarse[i],
                                    Class::Fine => !is_coarse[i],
                                };
                                if !keep {
                                    continue;
                                }
                                let mut acc = b[i];
                                for (c, v) in a.row_iter(i) {
                                    if c == i {
                                        continue;
                                    }
                                    // The per-nonzero ownership branch the
                                    // optimized kernel eliminates.
                                    let xv = if r.contains(&c) {
                                        // SAFETY: c is in this task's own
                                        // range; no other task writes it.
                                        unsafe { *p.0.add(c) }
                                    } else {
                                        temp[c]
                                    };
                                    acc -= v * xv;
                                }
                                // SAFETY: i is in this task's own range.
                                unsafe { *p.0.add(i) = acc * dinv[i] };
                            }
                        });
                    }
                });
            }
            Smoother::HybridOpt { part, nc } => {
                let nc = *nc;
                let rowptr = a.rowptr();
                let colidx = a.colidx();
                let values = a.values();
                // The zero-guess skip only applies to the coarse sweep
                // (all processed rows then satisfy `i < nc`, so the
                // snapshot is never read).
                let skip_zero = x_is_zero && class == Class::Coarse;
                let temp = ws.temp(n);
                if !skip_zero {
                    temp[..n].copy_from_slice(x);
                }
                let temp = &ws.temp[..n];
                let x_is_zero = skip_zero;
                let p = XPtr(x.as_mut_ptr());
                let nt = part.own.nthreads();
                rayon::scope(|s| {
                    for t in 0..nt {
                        let rows = match class {
                            Class::Coarse => part.own.coarse[t].clone(), // ALLOC: `Range` clone is a stack copy, no heap
                            Class::Fine => part.own.fine[t].clone(), // ALLOC: `Range` clone is a stack copy, no heap
                            Class::All => {
                                // All = both ranges; run as two loops.
                                // Handled by the caller issuing two
                                // sweeps; treat All as coarse+fine here.
                                part.own.coarse[t].start..part.own.coarse[t].end
                            }
                        };
                        let extra = if class == Class::All {
                            Some(part.own.fine[t].clone()) // ALLOC: `Range` clone is a stack copy, no heap
                        } else {
                            None
                        };
                        let p = &p;
                        s.spawn(move |_| {
                            let run = |rows: Range<usize>| {
                                for i in rows {
                                    let start = rowptr[i];
                                    let end = rowptr[i + 1];
                                    let up = part.up_start[i];
                                    let ext = part.ext_start[i];
                                    let mut acc = b[i];
                                    // Own lower: always live x.
                                    for k in start + 1..up {
                                        // SAFETY: own column, only this
                                        // task writes it.
                                        acc -= values[k] * unsafe { *p.0.add(colidx[k]) };
                                    }
                                    if !(x_is_zero && i < nc) {
                                        // Own upper: live x (still holds
                                        // pre-sweep values for c > i).
                                        for k in up..ext {
                                            // SAFETY: own column, only
                                            // this task writes it.
                                            acc -= values[k] * unsafe { *p.0.add(colidx[k]) };
                                        }
                                        // External: snapshot.
                                        for k in ext..end {
                                            acc -= values[k] * temp[colidx[k]];
                                        }
                                    }
                                    // SAFETY: i is in this task's own
                                    // range; no other task touches it.
                                    unsafe { *p.0.add(i) = acc * part.dinv[i] };
                                }
                            };
                            run(rows);
                            if let Some(f) = extra {
                                run(f);
                            }
                        });
                    }
                });
            }
            Smoother::Lex { dinv, levels } => {
                let p = XPtr(x.as_mut_ptr());
                let p = &p;
                for level in levels {
                    level.par_iter().with_min_len(512).for_each(|&i| {
                        let keep = true; // lexicographic GS ignores class
                        if keep {
                            let mut acc = b[i];
                            for (c, v) in a.row_iter(i) {
                                if c != i {
                                    // SAFETY: rows in a wavefront are
                                    // mutually independent; their
                                    // neighbours are in other wavefronts.
                                    acc -= v * unsafe { *p.0.add(c) };
                                }
                            }
                            // SAFETY: each row appears in exactly one
                            // wavefront, so i is written once per level.
                            unsafe { *p.0.add(i) = acc * dinv[i] };
                        }
                    });
                }
            }
            Smoother::L1Jacobi(sm) => {
                sm.sweep(a, b, x, ws.temp(a.nrows()));
            }
            Smoother::L1HybridGs(sm) => {
                sm.sweep(a, b, x, ws.temp(a.nrows()));
            }
            Smoother::Chebyshev(sm) => {
                sm.sweep(a, b, x);
            }
            Smoother::Multicolor { dinv, colors } => {
                let p = XPtr(x.as_mut_ptr());
                let p = &p;
                for color in colors {
                    color.par_iter().with_min_len(512).for_each(|&i| {
                        let mut acc = b[i];
                        for (c, v) in a.row_iter(i) {
                            if c != i {
                                // SAFETY: same-color rows are never
                                // adjacent, so reads are stable during
                                // this color's parallel phase.
                                acc -= v * unsafe { *p.0.add(c) };
                            }
                        }
                        // SAFETY: each row has exactly one color, so i
                        // is written once per color phase.
                        unsafe { *p.0.add(i) = acc * dinv[i] };
                    });
                }
            }
        }
    }
}

/// Dispatches a k-wide row kernel with a monomorphized lane count for
/// k ∈ {1, 2, 4, 8}; `K == 0` is the dynamic fallback (any k ≤ 8). The
/// per-lane arithmetic order is identical in every arm.
macro_rules! k_lanes {
    ($k:expr, $func:ident ( $($arg:expr),* $(,)? )) => {
        match $k {
            1 => $func::<1>($($arg),*),
            2 => $func::<2>($($arg),*),
            4 => $func::<4>($($arg),*),
            8 => $func::<8>($($arg),*),
            _ => $func::<0>($($arg),*),
        }
    };
}

/// The k-wide twin of the optimized hybrid GS row loop (Fig. 2b): one
/// traversal of the `[diag | own-lower | own-upper | ext]` row partition
/// advances all `k` lanes. Per lane, the entry order and arithmetic match
/// the scalar kernel exactly, so batch column `j` stays bitwise identical
/// to a solo sweep of that column.
#[allow(clippy::too_many_arguments)]
fn hybrid_opt_rows_batch<const K: usize>(
    part: &GsPartition,
    nc: usize,
    a: &Csr,
    bd: &[f64],
    p: &XPtr,
    temp: &[f64],
    k: usize,
    x_is_zero: bool,
    rows: Range<usize>,
) {
    let rowptr = a.rowptr();
    let colidx = a.colidx();
    let values = a.values();
    let kk = if K != 0 { K } else { k };
    debug_assert!(kk <= 8);
    for i in rows {
        let start = rowptr[i];
        let end = rowptr[i + 1];
        let up = part.up_start[i];
        let ext = part.ext_start[i];
        let mut acc = [0.0f64; 8];
        acc[..kk].copy_from_slice(&bd[i * kk..i * kk + kk]);
        // Own lower: always live x.
        for e in start + 1..up {
            let v = values[e];
            let cb = colidx[e] * kk;
            for j in 0..kk {
                // SAFETY: own column, only this task writes its lanes.
                acc[j] -= v * unsafe { *p.0.add(cb + j) };
            }
        }
        if !(x_is_zero && i < nc) {
            // Own upper: live x (still holds pre-sweep values for c > i).
            for e in up..ext {
                let v = values[e];
                let cb = colidx[e] * kk;
                for j in 0..kk {
                    // SAFETY: own column, only this task writes its lanes.
                    acc[j] -= v * unsafe { *p.0.add(cb + j) };
                }
            }
            // External: snapshot.
            for e in ext..end {
                let v = values[e];
                let cb = colidx[e] * kk;
                for j in 0..kk {
                    acc[j] -= v * temp[cb + j];
                }
            }
        }
        let d = part.dinv[i];
        let xb = i * kk;
        for j in 0..kk {
            // SAFETY: row i is in this task's own range; no other task
            // touches its lanes.
            unsafe { *p.0.add(xb + j) = acc[j] * d };
        }
    }
}

/// The k-wide weighted-Jacobi row relaxation (same arithmetic order per
/// lane as the scalar kernel).
#[allow(clippy::too_many_arguments)]
fn jacobi_row_batch<const K: usize>(
    a: &Csr,
    dinv: &[f64],
    omega: f64,
    bd: &[f64],
    temp: &[f64],
    k: usize,
    i: usize,
    xr: &mut [f64],
) {
    let kk = if K != 0 { K } else { k };
    debug_assert!(kk <= 8);
    let mut acc = [0.0f64; 8];
    acc[..kk].copy_from_slice(&bd[i * kk..i * kk + kk]);
    for (c, v) in a.row_iter(i) {
        let cb = c * kk;
        for j in 0..kk {
            acc[j] -= v * temp[cb + j];
        }
    }
    let w = omega * dinv[i];
    let tb = i * kk;
    for j in 0..kk {
        xr[j] = temp[tb + j] + w * acc[j];
    }
}

impl Smoother {
    /// Batched pre-smoothing over `k` interleaved columns; the per-class
    /// sweep sequence matches [`Smoother::pre_smooth`].
    pub fn pre_smooth_batch(
        &self,
        a: &Csr,
        b: &MultiVec,
        x: &mut MultiVec,
        ws: &mut Workspace,
        x_is_zero: bool,
    ) {
        match self {
            Smoother::HybridBase { .. } => {
                self.sweep_batch(a, b, x, ws, Class::Coarse, false);
                self.sweep_batch(a, b, x, ws, Class::Fine, false);
            }
            Smoother::HybridOpt { .. } => {
                self.sweep_batch(a, b, x, ws, Class::Coarse, x_is_zero);
                self.sweep_batch(a, b, x, ws, Class::Fine, false);
            }
            _ => self.sweep_batch(a, b, x, ws, Class::All, false),
        }
    }

    /// Batched post-smoothing (F then C, matching
    /// [`Smoother::post_smooth`]).
    pub fn post_smooth_batch(&self, a: &Csr, b: &MultiVec, x: &mut MultiVec, ws: &mut Workspace) {
        match self {
            Smoother::HybridBase { .. } | Smoother::HybridOpt { .. } => {
                self.sweep_batch(a, b, x, ws, Class::Fine, false);
                self.sweep_batch(a, b, x, ws, Class::Coarse, false);
            }
            _ => self.sweep_batch(a, b, x, ws, Class::All, false),
        }
    }

    /// One k-wide half-sweep. The optimized hybrid GS and Jacobi kernels
    /// advance all lanes per matrix-row traversal (for k ≤ 8); every
    /// other smoother — and any wider batch — falls back to extracting
    /// each column and running the scalar sweep, which is trivially
    /// bitwise identical to the solo path.
    pub fn sweep_batch(
        &self,
        a: &Csr,
        b: &MultiVec,
        x: &mut MultiVec,
        ws: &mut Workspace,
        class: Class,
        x_is_zero: bool,
    ) {
        let n = a.nrows();
        let k = b.k();
        assert_eq!(b.n(), n); // PANIC-FREE: shape asserts guard caller contract violations at the public smoother boundary (checked once per sweep).
        assert_eq!(x.n(), n); // PANIC-FREE: see above.
        assert_eq!(x.k(), k); // PANIC-FREE: see above.
        if k == 0 {
            return;
        }
        match self {
            Smoother::HybridOpt { part, nc } if k <= 8 => {
                let nc = *nc;
                // Zero-guess skip only applies to the coarse sweep, as in
                // the scalar kernel.
                let skip_zero = x_is_zero && class == Class::Coarse;
                let temp = ws.temp_batch(n * k);
                if !skip_zero {
                    temp[..n * k].copy_from_slice(x.data());
                }
                let temp = &ws.temp_batch[..n * k];
                let x_is_zero = skip_zero;
                let bd = b.data();
                let p = XPtr(x.data_mut().as_mut_ptr());
                let nt = part.own.nthreads();
                rayon::scope(|s| {
                    for t in 0..nt {
                        let (rows, extra) = match class {
                            Class::Coarse => (part.own.coarse[t].clone(), None), // ALLOC: `Range` clone is a stack copy, no heap
                            Class::Fine => (part.own.fine[t].clone(), None), // ALLOC: `Range` clone is a stack copy, no heap
                            Class::All => {
                                // ALLOC: `Range` clone is a stack copy, no heap
                                (part.own.coarse[t].clone(), Some(part.own.fine[t].clone()))
                            }
                        };
                        let p = &p;
                        s.spawn(move |_| {
                            k_lanes!(
                                k,
                                hybrid_opt_rows_batch(part, nc, a, bd, p, temp, k, x_is_zero, rows)
                            );
                            if let Some(f) = extra {
                                k_lanes!(
                                    k,
                                    hybrid_opt_rows_batch(
                                        part, nc, a, bd, p, temp, k, x_is_zero, f
                                    )
                                );
                            }
                        });
                    }
                });
            }
            Smoother::Jacobi { dinv, omega } if k <= 8 => {
                let temp = ws.temp_batch(n * k);
                temp[..n * k].copy_from_slice(x.data());
                let temp = &ws.temp_batch[..n * k];
                let bd = b.data();
                let omega = *omega;
                x.data_mut()
                    .par_chunks_mut(k)
                    .enumerate()
                    .with_min_len(512)
                    .for_each(|(i, xr)| {
                        k_lanes!(k, jacobi_row_batch(a, dinv, omega, bd, temp, k, i, xr));
                    });
            }
            _ => {
                // Extract-column fallback: run the scalar kernel per
                // column (bitwise the solo path by construction).
                let mut cb = std::mem::take(&mut ws.col_b);
                let mut cx = std::mem::take(&mut ws.col_x);
                cb.resize(n, 0.0);
                cx.resize(n, 0.0);
                for j in 0..k {
                    b.copy_col_into(j, &mut cb[..n]);
                    x.copy_col_into(j, &mut cx[..n]);
                    self.sweep(a, &cb[..n], &mut cx[..n], ws, class, x_is_zero);
                    x.set_col(j, &cx[..n]);
                }
                ws.col_b = cb;
                ws.col_x = cx;
            }
        }
    }
}

/// Sequential textbook Gauss-Seidel sweep (test oracle).
pub fn gauss_seidel_seq(a: &Csr, b: &[f64], x: &mut [f64]) {
    for i in 0..a.nrows() {
        let mut acc = b[i];
        let mut d = 0.0;
        for (c, v) in a.row_iter(i) {
            if c == i {
                d = v;
            } else {
                acc -= v * x[c];
            }
        }
        x[i] = acc / d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use famg_matgen::{laplace2d, rhs};
    use famg_sparse::spmv::residual_norm_sq;

    fn residual(a: &Csr, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        residual_norm_sq(a, x, b, &mut r).sqrt()
    }

    #[test]
    fn jacobi_reduces_residual() {
        // Smoothers damp high frequencies; asymptotic rates on smooth
        // error are 1 - O(h²), so use a small grid and many sweeps.
        let a = laplace2d(8, 8);
        let b = rhs::ones(64);
        let mut x = vec![0.0; 64];
        let sm = Smoother::jacobi(&a, 2.0 / 3.0);
        let mut ws = Workspace::new();
        let r0 = residual(&a, &b, &x);
        let mut prev = r0;
        for _ in 0..60 {
            sm.sweep(&a, &b, &mut x, &mut ws, Class::All, false);
            let cur = residual(&a, &b, &x);
            assert!(cur <= prev * (1.0 + 1e-12), "residual increased");
            prev = cur;
        }
        assert!(prev < 0.3 * r0, "only reduced {r0} -> {prev}");
    }

    #[test]
    fn hybrid_base_single_thread_equals_sequential_gs() {
        let a = laplace2d(8, 8);
        let b = rhs::random(64, 3);
        let is_coarse = vec![false; 64]; // single class -> one full sweep
        let sm = Smoother::hybrid_base(&a, is_coarse, 1);
        let mut ws = Workspace::new();
        let mut x1 = rhs::random(64, 5);
        let mut x2 = x1.clone();
        sm.sweep(&a, &b, &mut x1, &mut ws, Class::Fine, false);
        gauss_seidel_seq(&a, &b, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn hybrid_opt_single_thread_matches_base() {
        // With one thread and the same (permuted) ordering, the optimized
        // kernel must produce bitwise the same iterate as the baseline.
        let a0 = laplace2d(9, 7);
        let n = a0.nrows();
        let is_coarse: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let (mut ap, ord) = crate::reorder::cf_reorder(&a0, &is_coarse);
        let base = Smoother::hybrid_base(&ap.clone(), (0..n).map(|i| i < ord.nc).collect(), 1);
        let opt = Smoother::hybrid_opt(&mut ap, ord.nc, 1);
        let b = rhs::random(n, 7);
        let mut ws = Workspace::new();
        let mut xb = rhs::random(n, 9);
        let mut xo = xb.clone();
        base.pre_smooth(&ap, &b, &mut xb, &mut ws, false);
        opt.pre_smooth(&ap, &b, &mut xo, &mut ws, false);
        assert_eq!(xb, xo);
        base.post_smooth(&ap, &b, &mut xb, &mut ws);
        opt.post_smooth(&ap, &b, &mut xo, &mut ws);
        assert_eq!(xb, xo);
    }

    #[test]
    fn hybrid_opt_multithread_reduces_residual() {
        let mut a = laplace2d(8, 8);
        let n = a.nrows();
        let nc = 20;
        let sm = Smoother::hybrid_opt(&mut a, nc, 4);
        let b = rhs::ones(n);
        let mut x = vec![0.0; n];
        let mut ws = Workspace::new();
        let r0 = residual(&a, &b, &x);
        for i in 0..40 {
            sm.pre_smooth(&a, &b, &mut x, &mut ws, i == 0);
        }
        assert!(residual(&a, &b, &x) < 0.2 * r0);
    }

    #[test]
    fn zero_init_skip_matches_explicit_zero() {
        // With x = 0, the skip must give the same iterate as the full
        // kernel run on an explicitly zero vector.
        let mut a = laplace2d(12, 12);
        let n = a.nrows();
        let nc = 50;
        let sm = Smoother::hybrid_opt(&mut a, nc, 3);
        let b = rhs::random(n, 21);
        let mut ws = Workspace::new();
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        // temp buffer must read as zero for the skip variant to be valid.
        sm.pre_smooth(&a, &b, &mut x1, &mut ws, true);
        let mut ws2 = Workspace::new();
        sm.pre_smooth(&a, &b, &mut x2, &mut ws2, false);
        assert_eq!(x1, x2);
    }

    #[test]
    fn lexicographic_equals_sequential_gs() {
        let a = laplace2d(10, 9);
        let n = a.nrows();
        let sm = Smoother::lexicographic(&a);
        let b = rhs::random(n, 2);
        let mut x1 = rhs::random(n, 4);
        let mut x2 = x1.clone();
        let mut ws = Workspace::new();
        sm.sweep(&a, &b, &mut x1, &mut ws, Class::All, false);
        gauss_seidel_seq(&a, &b, &mut x2);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn lex_levels_cover_all_rows() {
        let a = laplace2d(6, 6);
        if let Smoother::Lex { levels, .. } = Smoother::lexicographic(&a) {
            let total: usize = levels.iter().map(std::vec::Vec::len).sum();
            assert_eq!(total, 36);
            // 2D 5-point: wavefronts are anti-diagonals -> 11 levels.
            assert_eq!(levels.len(), 11);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn multicolor_valid_coloring_and_convergence() {
        let a = laplace2d(10, 10);
        let sm = Smoother::multicolor(&a);
        if let Smoother::Multicolor { colors, .. } = &sm {
            // 5-point stencil is bipartite: exactly 2 colors.
            assert_eq!(colors.len(), 2);
            // No two adjacent rows share a color.
            let mut color_of = vec![0usize; 100];
            for (c, rows) in colors.iter().enumerate() {
                for &i in rows {
                    color_of[i] = c;
                }
            }
            for i in 0..100 {
                for (j, _) in a.row_iter(i) {
                    if j != i {
                        assert_ne!(color_of[i], color_of[j]);
                    }
                }
            }
        }
        let b = rhs::ones(100);
        let mut x = vec![0.0; 100];
        let mut ws = Workspace::new();
        let r0 = residual(&a, &b, &x);
        for _ in 0..60 {
            sm.sweep(&a, &b, &mut x, &mut ws, Class::All, false);
        }
        assert!(residual(&a, &b, &x) < 0.2 * r0);
    }

    #[test]
    fn batched_sweeps_bitwise_match_solo_columns() {
        // Genuine k-wide kernels (HybridOpt across several tasks, Jacobi)
        // and the extract-column fallback (Multicolor) must all produce
        // batch columns bitwise identical to scalar sweeps of those
        // columns — including the zero-guess skip and a dynamic width.
        let a0 = laplace2d(14, 11);
        let n = a0.nrows();
        let nc = 40;
        let mut ap = a0.clone();
        let smoothers = [
            Smoother::hybrid_opt(&mut ap, nc, 3),
            Smoother::jacobi(&a0, 2.0 / 3.0),
            Smoother::multicolor(&a0),
        ];
        for (si, sm) in smoothers.iter().enumerate() {
            let a = if si == 0 { &ap } else { &a0 };
            for k in [1usize, 3, 4, 8] {
                for zero_guess in [false, true] {
                    let bc: Vec<Vec<f64>> = (0..k).map(|j| rhs::random(n, j as u64)).collect();
                    let xc: Vec<Vec<f64>> = (0..k)
                        .map(|j| {
                            if zero_guess {
                                vec![0.0; n]
                            } else {
                                rhs::random(n, 100 + j as u64)
                            }
                        })
                        .collect();
                    let b = MultiVec::from_columns(&bc);
                    let mut x = MultiVec::from_columns(&xc);
                    let mut ws = Workspace::new();
                    sm.pre_smooth_batch(a, &b, &mut x, &mut ws, zero_guess);
                    sm.post_smooth_batch(a, &b, &mut x, &mut ws);
                    for j in 0..k {
                        let mut solo = xc[j].clone();
                        let mut ws2 = Workspace::new();
                        sm.pre_smooth(a, &bc[j], &mut solo, &mut ws2, zero_guess);
                        sm.post_smooth(a, &bc[j], &mut solo, &mut ws2);
                        assert_eq!(
                            x.col(j),
                            solo,
                            "smoother {si} k={k} zero={zero_guess} col {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hybrid_multithread_still_converges_as_iteration() {
        // Hybrid GS with several tasks is still a convergent smoother on
        // diagonally dominant systems.
        let a = laplace2d(8, 8);
        let n = a.nrows();
        let is_coarse: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let sm = Smoother::hybrid_base(&a, is_coarse, 8);
        let b = rhs::ones(n);
        let mut x = vec![0.0; n];
        let mut ws = Workspace::new();
        let r0 = residual(&a, &b, &x);
        for _ in 0..50 {
            sm.pre_smooth(&a, &b, &mut x, &mut ws, false);
        }
        assert!(residual(&a, &b, &x) < 0.1 * r0);
    }
}

//! Timing and complexity statistics matching the paper's reporting.
//!
//! [`PhaseTimes`] buckets match the Fig. 5 legend: `Strength+Coarsen`,
//! `Interp`, `RAP`, `Setup_etc` for the setup phase; `GS`, `SpMV`,
//! `BLAS1`, `Solve_etc` for the solve phase. [`SetupStats`] reports the
//! operator and grid complexities that the paper uses to argue the
//! fairness of its comparisons (§5.1.1).

use std::time::Duration;

/// Wall-clock time per component, in the paper's Fig. 5 categories.
#[derive(Debug, Default, Clone)]
pub struct PhaseTimes {
    /// Strength matrix creation + PMIS coarsening.
    pub strength_coarsen: Duration,
    /// Interpolation operator construction.
    pub interp: Duration,
    /// Galerkin triple product.
    pub rap: Duration,
    /// Other setup work (permutations, smoother setup, transposes, ...).
    pub setup_etc: Duration,
    /// Gauss-Seidel (or other) smoothing.
    pub gs: Duration,
    /// Interpolation/restriction and residual SpMVs.
    pub spmv: Duration,
    /// Vector ops: dots, axpys, norms.
    pub blas1: Duration,
    /// Other solve work (coarse solve, vector permutes, ...).
    pub solve_etc: Duration,
}

impl PhaseTimes {
    /// Total setup time.
    pub fn setup_total(&self) -> Duration {
        self.strength_coarsen + self.interp + self.rap + self.setup_etc
    }

    /// Total solve time.
    pub fn solve_total(&self) -> Duration {
        self.gs + self.spmv + self.blas1 + self.solve_etc
    }

    /// Setup + solve.
    pub fn total(&self) -> Duration {
        self.setup_total() + self.solve_total()
    }

    /// Adds another breakdown into this one.
    pub fn accumulate(&mut self, o: &PhaseTimes) {
        self.strength_coarsen += o.strength_coarsen;
        self.interp += o.interp;
        self.rap += o.rap;
        self.setup_etc += o.setup_etc;
        self.gs += o.gs;
        self.spmv += o.spmv;
        self.blas1 += o.blas1;
        self.solve_etc += o.solve_etc;
    }
}

/// Communication volume over one phase window (per rank): bytes and
/// messages actually sent, as counted by the `famg-dist` runtime. The
/// distributed setup/solve results carry one of these each so the
/// paper's §4.3/§5.4 comm-volume breakdowns are available per run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CommVolume {
    /// Bytes sent to other ranks in the window.
    pub bytes: u64,
    /// Messages sent to other ranks in the window.
    pub messages: u64,
}

impl CommVolume {
    /// Adds another window into this one.
    pub fn accumulate(&mut self, o: &CommVolume) {
        self.bytes += o.bytes;
        self.messages += o.messages;
    }
}

/// Per-level sizes and the derived complexity measures.
#[derive(Debug, Default, Clone)]
pub struct SetupStats {
    /// Rows per level, finest first.
    pub level_rows: Vec<usize>,
    /// Stored non-zeros per level, finest first.
    pub level_nnz: Vec<usize>,
    /// Average interpolation entries per fine row, per level.
    pub interp_nnz: Vec<usize>,
}

impl SetupStats {
    /// Operator complexity: `Σ_l nnz(A_l) / nnz(A_0)` — the paper's
    /// primary fairness measure.
    pub fn operator_complexity(&self) -> f64 {
        if self.level_nnz.is_empty() || self.level_nnz[0] == 0 {
            return 0.0;
        }
        self.level_nnz.iter().sum::<usize>() as f64 / self.level_nnz[0] as f64
    }

    /// Grid complexity: `Σ_l n_l / n_0`.
    pub fn grid_complexity(&self) -> f64 {
        if self.level_rows.is_empty() || self.level_rows[0] == 0 {
            return 0.0;
        }
        self.level_rows.iter().sum::<usize>() as f64 / self.level_rows[0] as f64
    }

    /// Number of levels built.
    pub fn num_levels(&self) -> usize {
        self.level_rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexities() {
        let s = SetupStats {
            level_rows: vec![100, 25, 6],
            level_nnz: vec![500, 200, 30],
            interp_nnz: vec![300, 60],
        };
        assert!((s.operator_complexity() - 730.0 / 500.0).abs() < 1e-12);
        assert!((s.grid_complexity() - 131.0 / 100.0).abs() < 1e-12);
        assert_eq!(s.num_levels(), 3);
    }

    #[test]
    fn empty_stats_safe() {
        let s = SetupStats::default();
        assert_eq!(s.operator_complexity(), 0.0);
        assert_eq!(s.grid_complexity(), 0.0);
    }

    #[test]
    fn phase_times_accumulate() {
        let mut a = PhaseTimes {
            gs: Duration::from_millis(5),
            ..PhaseTimes::default()
        };
        let b = PhaseTimes {
            gs: Duration::from_millis(7),
            rap: Duration::from_millis(3),
            ..PhaseTimes::default()
        };
        a.accumulate(&b);
        assert_eq!(a.gs, Duration::from_millis(12));
        assert_eq!(a.setup_total(), Duration::from_millis(3));
        assert_eq!(a.solve_total(), Duration::from_millis(12));
        assert_eq!(a.total(), Duration::from_millis(15));
    }
}

//! Timing and complexity statistics matching the paper's reporting.
//!
//! [`PhaseTimes`] buckets match the Fig. 5 legend: `Strength+Coarsen`,
//! `Interp`, `RAP`, `Setup_etc` for the setup phase; `GS`, `SpMV`,
//! `BLAS1`, `Solve_etc` for the solve phase. [`SetupStats`] reports the
//! operator and grid complexities that the paper uses to argue the
//! fairness of its comparisons (§5.1.1).
//!
//! Since the famg-prof integration the buckets are a *view* over the
//! span tree recorded during setup/solve ([`PhaseTimes::from_span`]),
//! not an independently maintained tally: each span's **self** time
//! (wall minus children) is attributed to exactly one bucket, so the
//! bucket sums reconstruct the root span's wall time and nested spans
//! can never double-count.

use famg_prof::SpanNode;
use std::time::Duration;

/// Wall-clock time per component, in the paper's Fig. 5 categories.
#[derive(Debug, Default, Clone)]
pub struct PhaseTimes {
    /// Strength matrix creation + PMIS coarsening.
    pub strength_coarsen: Duration,
    /// Interpolation operator construction.
    pub interp: Duration,
    /// Galerkin triple product.
    pub rap: Duration,
    /// Other setup work (permutations, smoother setup, transposes, ...).
    pub setup_etc: Duration,
    /// Gauss-Seidel (or other) smoothing.
    pub gs: Duration,
    /// Interpolation/restriction and residual SpMVs.
    pub spmv: Duration,
    /// Vector ops: dots, axpys, norms.
    pub blas1: Duration,
    /// Other solve work (coarse solve, vector permutes, ...).
    pub solve_etc: Duration,
}

impl PhaseTimes {
    /// Total setup time.
    pub fn setup_total(&self) -> Duration {
        self.strength_coarsen + self.interp + self.rap + self.setup_etc
    }

    /// Total solve time.
    pub fn solve_total(&self) -> Duration {
        self.gs + self.spmv + self.blas1 + self.solve_etc
    }

    /// Setup + solve.
    pub fn total(&self) -> Duration {
        self.setup_total() + self.solve_total()
    }

    /// Adds another breakdown into this one.
    pub fn accumulate(&mut self, o: &PhaseTimes) {
        self.strength_coarsen += o.strength_coarsen;
        self.interp += o.interp;
        self.rap += o.rap;
        self.setup_etc += o.setup_etc;
        self.gs += o.gs;
        self.spmv += o.spmv;
        self.blas1 += o.blas1;
        self.solve_etc += o.solve_etc;
    }

    /// Derives the Fig. 5 buckets from a recorded span tree.
    ///
    /// Each span's *self* time (wall minus children, saturating) lands in
    /// exactly one bucket, chosen by span name within the root's phase
    /// (a root named `"solve"` is solve-phase; anything else — `"setup"`,
    /// `"refresh"` — is setup-phase). Unrecognized names fall into the
    /// phase's `etc` bucket, so the bucket totals reconstruct the root
    /// span's wall time up to clock-read jitter and nesting can never
    /// double-count.
    pub fn from_span(root: &SpanNode) -> PhaseTimes {
        let mut out = PhaseTimes::default();
        let solve_phase = root.name == "solve";
        let etc = if solve_phase {
            Bucket::SolveEtc
        } else {
            Bucket::SetupEtc
        };
        attribute(root, solve_phase, etc, &mut out);
        out
    }
}

/// Fig. 5 bucket identifiers, used while walking the span tree so that
/// transport-level spans can *inherit* the bucket of the phase they run
/// inside (a halo exchange during smoothing is GS time, the same
/// exchange during restriction is SpMV time).
#[derive(Clone, Copy)]
enum Bucket {
    StrengthCoarsen,
    Interp,
    Rap,
    SetupEtc,
    Gs,
    Spmv,
    Blas1,
    SolveEtc,
}

impl Bucket {
    fn slot(self, out: &mut PhaseTimes) -> &mut Duration {
        match self {
            Bucket::StrengthCoarsen => &mut out.strength_coarsen,
            Bucket::Interp => &mut out.interp,
            Bucket::Rap => &mut out.rap,
            Bucket::SetupEtc => &mut out.setup_etc,
            Bucket::Gs => &mut out.gs,
            Bucket::Spmv => &mut out.spmv,
            Bucket::Blas1 => &mut out.blas1,
            Bucket::SolveEtc => &mut out.solve_etc,
        }
    }
}

/// Span-name → Fig. 5 bucket. `None` means "inherit the enclosing span's
/// bucket" — used by communication primitives that serve whatever kernel
/// invoked them rather than being a phase of their own.
fn classify(name: &str, solve_phase: bool) -> Option<Bucket> {
    if matches!(
        name,
        "halo"
            | "halo_inflight"
            | "halo_post"
            | "halo_wait"
            | "halo_batch"
            | "spgemm"
            | "gather"
            | "scatter"
    ) {
        return None;
    }
    Some(if solve_phase {
        match name {
            "smooth" | "gs_batch" => Bucket::Gs,
            "residual" | "restrict" | "prolong" | "spmv" | "spmm" => Bucket::Spmv,
            "blas1" | "dot" | "norm" => Bucket::Blas1,
            // "solve", "vcycle", "coarse_solve", "permute", ...
            _ => Bucket::SolveEtc,
        }
    } else {
        match name {
            "strength" | "coarsen" => Bucket::StrengthCoarsen,
            "interp" => Bucket::Interp,
            "rap" => Bucket::Rap,
            // "setup", "refresh", "cf_reorder", "extract_p",
            // "transpose", "smoother_setup", "coarse", "capture", ...
            _ => Bucket::SetupEtc,
        }
    })
}

/// Attribution walk (see [`PhaseTimes::from_span`]).
fn attribute(node: &SpanNode, solve_phase: bool, inherited: Bucket, out: &mut PhaseTimes) {
    let bucket = classify(node.name, solve_phase).unwrap_or(inherited);
    *bucket.slot(out) += node.self_time();
    for c in &node.children {
        attribute(c, solve_phase, bucket, out);
    }
}

/// Communication volume over one phase window (per rank): bytes and
/// messages actually sent, as counted by the `famg-dist` runtime. The
/// distributed setup/solve results carry one of these each so the
/// paper's §4.3/§5.4 comm-volume breakdowns are available per run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CommVolume {
    /// Bytes sent to other ranks in the window.
    pub bytes: u64,
    /// Messages sent to other ranks in the window.
    pub messages: u64,
}

impl CommVolume {
    /// Adds another window into this one.
    pub fn accumulate(&mut self, o: &CommVolume) {
        self.bytes += o.bytes;
        self.messages += o.messages;
    }
}

/// Per-level sizes and the derived complexity measures.
#[derive(Debug, Default, Clone)]
pub struct SetupStats {
    /// Rows per level, finest first.
    pub level_rows: Vec<usize>,
    /// Stored non-zeros per level, finest first.
    pub level_nnz: Vec<usize>,
    /// Average interpolation entries per fine row, per level.
    pub interp_nnz: Vec<usize>,
}

impl SetupStats {
    /// Operator complexity: `Σ_l nnz(A_l) / nnz(A_0)` — the paper's
    /// primary fairness measure.
    pub fn operator_complexity(&self) -> f64 {
        if self.level_nnz.is_empty() || self.level_nnz[0] == 0 {
            return 0.0;
        }
        self.level_nnz.iter().sum::<usize>() as f64 / self.level_nnz[0] as f64
    }

    /// Grid complexity: `Σ_l n_l / n_0`.
    pub fn grid_complexity(&self) -> f64 {
        if self.level_rows.is_empty() || self.level_rows[0] == 0 {
            return 0.0;
        }
        self.level_rows.iter().sum::<usize>() as f64 / self.level_rows[0] as f64
    }

    /// Number of levels built.
    pub fn num_levels(&self) -> usize {
        self.level_rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexities() {
        let s = SetupStats {
            level_rows: vec![100, 25, 6],
            level_nnz: vec![500, 200, 30],
            interp_nnz: vec![300, 60],
        };
        assert!((s.operator_complexity() - 730.0 / 500.0).abs() < 1e-12);
        assert!((s.grid_complexity() - 131.0 / 100.0).abs() < 1e-12);
        assert_eq!(s.num_levels(), 3);
    }

    #[test]
    fn empty_stats_safe() {
        let s = SetupStats::default();
        assert_eq!(s.operator_complexity(), 0.0);
        assert_eq!(s.grid_complexity(), 0.0);
    }

    fn span(name: &'static str, wall_ms: u64, children: Vec<SpanNode>) -> SpanNode {
        SpanNode {
            name,
            wall: Duration::from_millis(wall_ms),
            count: 1,
            children,
            ..SpanNode::default()
        }
    }

    #[test]
    fn from_span_buckets_setup_self_times() {
        let root = span(
            "setup",
            100,
            vec![
                span("strength", 10, vec![]),
                span("coarsen", 5, vec![]),
                span("interp", 20, vec![]),
                span("rap", 30, vec![]),
                span("smoother_setup", 15, vec![]),
            ],
        );
        let t = PhaseTimes::from_span(&root);
        assert_eq!(t.strength_coarsen, Duration::from_millis(15));
        assert_eq!(t.interp, Duration::from_millis(20));
        assert_eq!(t.rap, Duration::from_millis(30));
        // 15 ms smoother_setup + 20 ms of root self time.
        assert_eq!(t.setup_etc, Duration::from_millis(35));
        // Buckets reconstruct the root wall exactly.
        assert_eq!(t.setup_total(), root.wall);
        assert_eq!(t.solve_total(), Duration::ZERO);
    }

    #[test]
    fn from_span_buckets_solve_and_never_double_counts_nesting() {
        // A nested vcycle tree: the "vcycle" wrapper's wall time includes
        // its children, but only its *self* time lands in solve_etc.
        let root = span(
            "solve",
            100,
            vec![
                span(
                    "vcycle",
                    80,
                    vec![
                        span("smooth", 40, vec![]),
                        span("residual", 10, vec![]),
                        span("restrict", 5, vec![]),
                        span("vcycle", 10, vec![span("coarse_solve", 8, vec![])]),
                        span("prolong", 5, vec![]),
                    ],
                ),
                span("blas1", 12, vec![]),
            ],
        );
        let t = PhaseTimes::from_span(&root);
        assert_eq!(t.gs, Duration::from_millis(40));
        assert_eq!(t.spmv, Duration::from_millis(20));
        assert_eq!(t.blas1, Duration::from_millis(12));
        // solve_etc = root self (8) + outer vcycle self (10)
        //           + inner vcycle self (2) + coarse_solve (8).
        assert_eq!(t.solve_etc, Duration::from_millis(28));
        assert_eq!(t.solve_total(), root.wall);
        assert_eq!(t.setup_total(), Duration::ZERO);
    }

    #[test]
    fn from_span_transport_spans_inherit_enclosing_bucket() {
        // Halo exchange inside smoothing is GS time; the same primitive
        // inside restriction is SpMV time. A top-level halo (no kernel
        // parent) falls back to the phase's etc bucket.
        let root = span(
            "solve",
            100,
            vec![
                span("smooth", 40, vec![span("halo", 15, vec![])]),
                span("restrict", 20, vec![span("halo", 5, vec![])]),
                span("halo", 10, vec![]),
            ],
        );
        let t = PhaseTimes::from_span(&root);
        assert_eq!(t.gs, Duration::from_millis(40));
        assert_eq!(t.spmv, Duration::from_millis(20));
        // root self (30) + orphan halo (10).
        assert_eq!(t.solve_etc, Duration::from_millis(40));
        assert_eq!(t.solve_total(), root.wall);

        // Setup side: spgemm under rap stays RAP time.
        let root = span(
            "setup",
            50,
            vec![span("rap", 30, vec![span("spgemm", 12, vec![])])],
        );
        let t = PhaseTimes::from_span(&root);
        assert_eq!(t.rap, Duration::from_millis(30));
        assert_eq!(t.setup_etc, Duration::from_millis(20));
    }

    #[test]
    fn phase_times_accumulate() {
        let mut a = PhaseTimes {
            gs: Duration::from_millis(5),
            ..PhaseTimes::default()
        };
        let b = PhaseTimes {
            gs: Duration::from_millis(7),
            rap: Duration::from_millis(3),
            ..PhaseTimes::default()
        };
        a.accumulate(&b);
        assert_eq!(a.gs, Duration::from_millis(12));
        assert_eq!(a.setup_total(), Duration::from_millis(3));
        assert_eq!(a.solve_total(), Duration::from_millis(12));
        assert_eq!(a.total(), Duration::from_millis(15));
    }
}

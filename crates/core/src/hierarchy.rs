//! Multigrid hierarchy construction — the AMG setup phase.
//!
//! Per level: strength matrix → coarsening → (optional CF permutation) →
//! interpolation → Galerkin RAP → smoother setup. Every step dispatches
//! between the baseline and optimized kernels according to
//! [`crate::params::OptFlags`], so the paper's Fig. 5 component speedups
//! can be measured on identical hierarchies.

use crate::coarsen::{aggressive_pmis_stages, pmis, Coarsening};
use crate::interp::{
    direct, extended_i, multipass, truncate_matrix, two_stage_extended_i, CfMap, TruncParams,
};
use crate::params::{AmgConfig, CoarsenKind, InterpKind, SmootherKind};
use crate::refresh::{FrozenLevel, FrozenSetup};
use crate::reorder::cf_reorder;
use crate::smoother::Smoother;
use crate::stats::{PhaseTimes, SetupStats};
use crate::strength::strength;
use famg_sparse::dense::{DenseMatrix, LuFactor};
use famg_sparse::permute::Permutation;
use famg_sparse::spgemm::SpgemmKernel;
use famg_sparse::transpose::transpose_par;
use famg_sparse::triple::{rap_cf_from_parts, rap_row_fused, rap_scalar_fused};
use famg_sparse::Csr;

/// Grid-transfer operators between a level and the next coarser one.
#[derive(Debug)]
pub enum TransferOps {
    /// Baseline representation: the full `n × nc` interpolation operator
    /// (identity rows interleaved). `r` is `Pᵀ`, kept only under the
    /// `keep_transpose` optimization; otherwise restriction re-transposes
    /// `P` on every application, as baseline HYPRE did.
    Full {
        /// Interpolation operator.
        p: Csr,
        /// Cached transpose, if `keep_transpose` is on.
        r: Option<Csr>,
    },
    /// Optimized representation over the CF-permuted level: only the fine
    /// block `P_F` of `P = [I; P_F]` plus its transpose (kept from setup).
    CfBlock {
        /// Fine rows of the interpolation operator (`nf × nc`).
        pf: Csr,
        /// `P_Fᵀ` (`nc × nf`).
        pft: Csr,
    },
}

/// One multigrid level.
#[derive(Debug)]
pub struct Level {
    /// The operator (CF-permuted when the level was built with
    /// `cf_reorder`; row-internally reordered when the optimized smoother
    /// is active — neither affects SpMV semantics).
    pub a: Csr,
    /// The permutation mapping this level's raw index space (as produced
    /// by the parent's RAP) to the stored ordering. `None` = identity.
    pub perm: Option<Permutation>,
    /// Number of coarse points (rows of the next level); 0 at the
    /// coarsest level.
    pub nc: usize,
    /// Transfer operators to the next level (`None` at the coarsest).
    pub ops: Option<TransferOps>,
    /// The level smoother.
    pub smoother: Smoother,
}

/// The assembled AMG hierarchy.
#[derive(Debug)]
pub struct Hierarchy {
    /// Levels, finest first.
    pub levels: Vec<Level>,
    /// Dense factorization of the coarsest operator, when small enough.
    pub coarse_lu: Option<LuFactor>,
    /// Solver configuration the hierarchy was built with.
    pub config: AmgConfig,
    /// Per-level size statistics.
    pub stats: SetupStats,
    /// Setup-phase timing breakdown (Fig. 5 categories), derived from
    /// `profile` — a rollup view, not independent bookkeeping.
    pub times: PhaseTimes,
    /// Full span profile of the most recent setup (or refresh): per-level
    /// strength/coarsen/interp/RAP sub-spans plus the raw event timeline
    /// for chrome://tracing export. Empty when the `prof` feature is off.
    pub profile: famg_prof::Profile,
}

pub(crate) fn build_smoother(
    a: &mut Csr,
    nc: usize,
    is_coarse: Option<&[bool]>,
    cfg: &AmgConfig,
) -> Smoother {
    // Task decomposition is part of the numerical method for the hybrid
    // smoothers (Jacobi across tasks); honour a pinned count when the
    // config asks for pool-size-independent behaviour.
    let nthreads = cfg
        .smoother_tasks
        .unwrap_or_else(famg_sparse::partition::num_threads);
    match cfg.smoother {
        SmootherKind::Jacobi => Smoother::jacobi(a, 2.0 / 3.0),
        SmootherKind::HybridGs => {
            if cfg.opt.reordered_smoother {
                Smoother::hybrid_opt(a, nc, nthreads)
            } else {
                let marker = match is_coarse {
                    Some(m) => m.to_vec(),
                    None => vec![false; a.nrows()],
                };
                Smoother::hybrid_base(a, marker, nthreads)
            }
        }
        SmootherKind::LexicographicGs => Smoother::lexicographic(a),
        SmootherKind::MulticolorGs => Smoother::multicolor(a),
        SmootherKind::L1Jacobi => {
            Smoother::L1Jacobi(crate::smoother_ext::L1Jacobi::new(a, nthreads))
        }
        SmootherKind::L1HybridGs => {
            Smoother::L1HybridGs(crate::smoother_ext::L1HybridGs::new(a, nthreads))
        }
        SmootherKind::Chebyshev => {
            Smoother::Chebyshev(crate::smoother_ext::Chebyshev::new(a, 2, 30.0, 15))
        }
    }
}

/// Builds the interpolation operator for one level according to the
/// configured scheme. Returns the full `n × nc` operator.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_interp(
    a: &Csr,
    s: &Csr,
    cf: &CfMap,
    stage1: Option<&Coarsening>,
    final_c: &Coarsening,
    kind: InterpKind,
    cfg: &AmgConfig,
) -> Csr {
    let t = TruncParams {
        factor: cfg.trunc_factor,
        max_elements: cfg.max_elements,
    };
    let fused = cfg.opt.fused_truncation;
    let trunc_arg = if fused { Some(&t) } else { None };
    let p = match kind {
        InterpKind::Direct => direct(a, s, cf, trunc_arg),
        InterpKind::Classical => crate::interp::classical(a, s, cf, trunc_arg),
        InterpKind::ExtendedI => extended_i(a, s, cf, trunc_arg),
        InterpKind::Multipass => multipass(a, s, cf, trunc_arg),
        InterpKind::TwoStageExtendedI => {
            let stage1 = stage1.expect("two-stage interpolation requires aggressive coarsening");
            // The cache-residency heuristic only applies when enabled;
            // otherwise the one-pass flag forces a kernel so the ablation
            // bins measure each in isolation.
            let kernel = if cfg.opt.adaptive_spgemm {
                SpgemmKernel::Auto
            } else if cfg.opt.one_pass_spgemm {
                SpgemmKernel::OnePass
            } else {
                SpgemmKernel::TwoPass
            };
            // Two-stage truncates at every stage by definition.
            return two_stage_extended_i(
                a,
                s,
                stage1,
                final_c,
                cfg.strength_threshold,
                cfg.max_row_sum,
                Some(&t),
                kernel,
            );
        }
    };
    if fused {
        p
    } else {
        // Baseline path: truncate as a separate pass over the full matrix.
        truncate_matrix(&p, &t)
    }
}

/// Panics with a level-tagged report if a `famg-check` validator fails.
#[cfg(feature = "validate")]
fn enforce(level: usize, what: &str, result: famg_check::CheckResult) {
    if let Err(v) = result {
        panic!("hierarchy validation failed at level {level} ({what}): {v}");
    }
}

/// Validates one freshly built level (either path) before the smoother
/// reorders the operator in place. `is_coarse` is in the same ordering
/// as `a_level` / `s` / `p_full`. `rowsum_exact` says whether the
/// interpolation scheme reproduces constants row-locally (true for the
/// single-hop distribution schemes: direct, classical, extended+i);
/// multipass and two-stage compose weights through neighbours whose own
/// row sums are legitimately ≠ 1 next to Dirichlet boundaries, so the
/// per-row check does not apply to them.
#[cfg(feature = "validate")]
#[allow(clippy::too_many_arguments)]
fn validate_level(
    level: usize,
    a_level: &Csr,
    s: &Csr,
    is_coarse: &[bool],
    max_dist: usize,
    p_full: &Csr,
    a_coarse: &Csr,
    cf_permuted: bool,
    rowsum_exact: bool,
) {
    use famg_check as check;
    enforce(level, "operator structure", check::check_csr(a_level));
    enforce(level, "interp structure", check::check_csr(p_full));
    enforce(
        level,
        "coarse operator structure",
        check::check_csr(a_coarse),
    );
    // Fused RAP kernels emit first-touch column order (unsorted by
    // design), but duplicate columns would mean a broken accumulator.
    enforce(
        level,
        "coarse operator columns",
        check::check_no_duplicates(a_coarse),
    );
    enforce(level, "interp columns", check::check_no_duplicates(p_full));
    enforce(
        level,
        "CF splitting",
        check::check_cf_splitting(s, is_coarse, max_dist),
    );
    if cf_permuted {
        enforce(
            level,
            "interp identity block",
            check::check_interp_identity_block(p_full, p_full.ncols()),
        );
    } else {
        enforce(
            level,
            "interp C rows",
            check::check_interp_c_identity(p_full, is_coarse),
        );
    }
    if rowsum_exact {
        enforce(
            level,
            "interp row sums",
            check::check_interp_row_sums(p_full, a_level, 1e-6),
        );
    }
    let sample = check::galerkin_sample_rows(a_coarse.nrows(), 32);
    enforce(
        level,
        "Galerkin RAP",
        check::check_galerkin(a_coarse, a_level, p_full, &sample, 1e-8),
    );
}

impl Hierarchy {
    /// Runs the AMG setup phase on `a`.
    pub fn build(a: &Csr, cfg: &AmgConfig) -> Hierarchy {
        Self::build_impl(a, cfg, None)
    }

    /// Runs the setup phase and additionally captures a [`FrozenSetup`]
    /// holding every pattern-derived decision, so later same-pattern
    /// operators can be absorbed through [`Hierarchy::refresh`] without
    /// re-running strength, coarsening, reordering, or symbolic RAP.
    pub fn build_frozen(a: &Csr, cfg: &AmgConfig) -> (Hierarchy, FrozenSetup) {
        let mut captured = Vec::new();
        let h = Self::build_impl(a, cfg, Some(&mut captured));
        let frozen = FrozenSetup {
            fine_rowptr: a.rowptr().to_vec(),
            fine_colidx: a.colidx().to_vec(),
            levels: captured,
        };
        (h, frozen)
    }

    fn build_impl(
        a: &Csr,
        cfg: &AmgConfig,
        mut capture: Option<&mut Vec<FrozenLevel>>,
    ) -> Hierarchy {
        assert_eq!(a.nrows(), a.ncols(), "AMG needs a square operator");
        #[cfg(feature = "validate")]
        enforce(0, "input structure", famg_check::check_csr(a));
        // Root span for the whole setup; the Fig. 5 buckets are derived
        // from the captured tree after it closes.
        let root_span = famg_prof::scope("setup");
        let mut stats = SetupStats::default();
        let mut levels: Vec<Level> = Vec::new();
        let mut current: Csr = a.clone();

        loop {
            let n = current.nrows();
            stats.level_rows.push(n);
            stats.level_nnz.push(current.nnz());
            let at_capacity = levels.len() + 1 >= cfg.max_levels;
            if n <= cfg.coarse_solve_size || at_capacity {
                break;
            }

            // --- Strength + coarsening. ---
            let lvl_idx = levels.len();
            let strength_span = famg_prof::scope_at("strength", lvl_idx);
            let s = strength(&current, cfg.strength_threshold, cfg.max_row_sum);
            drop(strength_span);
            let coarsen_span = famg_prof::scope_at("coarsen", lvl_idx);
            let (ckind, ikind) = cfg.level_scheme(lvl_idx);
            let (stage1, coarsening) = match ckind {
                CoarsenKind::Pmis => (None, pmis(&s, cfg.seed.wrapping_add(lvl_idx as u64))),
                CoarsenKind::AggressivePmis => {
                    let (first, fin) =
                        aggressive_pmis_stages(&s, cfg.seed.wrapping_add(lvl_idx as u64));
                    (Some(first), fin)
                }
            };
            drop(coarsen_span);
            if coarsening.ncoarse == 0 || coarsening.ncoarse == n {
                break; // cannot coarsen further
            }

            if cfg.opt.cf_reorder {
                // --- Optimized path: permute coarse-first. ---
                let reorder_span = famg_prof::scope_at("cf_reorder", lvl_idx);
                let (ap, ord) = cf_reorder(&current, &coarsening.is_coarse);
                let sp = famg_sparse::permute::permute_symmetric(&s, &ord.perm);
                // Permute the coarsening metadata into the new ordering.
                let is_coarse_p: Vec<bool> = (0..n).map(|i| i < ord.nc).collect();
                let permute_stage = |st: &Coarsening| Coarsening {
                    is_coarse: {
                        let mut v = vec![false; n];
                        for i in 0..n {
                            v[ord.perm.forward[i]] = st.is_coarse[i];
                        }
                        v
                    },
                    ncoarse: st.ncoarse,
                };
                let stage1_p = stage1.as_ref().map(&permute_stage);
                let final_p = permute_stage(&coarsening);
                drop(reorder_span);

                // --- Interpolation. ---
                let interp_span = famg_prof::scope_at("interp", lvl_idx);
                let cf = CfMap::new(is_coarse_p);
                let p_full = build_interp(&ap, &sp, &cf, stage1_p.as_ref(), &final_p, ikind, cfg);
                drop(interp_span);

                // --- Split into [I; P_F] and keep the transpose. ---
                let extract_span = famg_prof::scope_at("extract_p", lvl_idx);
                let nc = ord.nc;
                let pf = extract_fine_block(&p_full, nc);
                let pft = transpose_par(&pf);
                drop(extract_span);

                // --- RAP over the CF blocks. ---
                let rap_span = famg_prof::scope_at("rap", lvl_idx);
                let next = rap_cf_from_parts(&ap, nc, &pf);
                drop(rap_span);

                #[cfg(feature = "validate")]
                validate_level(
                    levels.len(),
                    &ap,
                    &sp,
                    &final_p.is_coarse,
                    usize::from(!matches!(ckind, CoarsenKind::AggressivePmis)),
                    &p_full,
                    &next,
                    true,
                    !matches!(ikind, InterpKind::Multipass | InterpKind::TwoStageExtendedI),
                );

                if let Some(cap) = capture.as_deref_mut() {
                    let _s = famg_prof::scope_at("capture", lvl_idx);
                    use crate::refresh::{index_valued, ValueMap};
                    let tape = matches!(ikind, InterpKind::ExtendedI)
                        .then(|| crate::interp::ExtITape::capture(&ap, &sp, &cf));
                    // Freeze the value-moving transforms as gather maps by
                    // pushing an index-valued matrix through each once.
                    let perm_map = ValueMap::capture(famg_sparse::permute::permute_symmetric(
                        &index_valued(&current),
                        &ord.perm,
                    ));
                    let (icc, icf, ifc, iff) =
                        famg_sparse::permute::split_cf_blocks(&index_valued(&ap), nc);
                    let cf_maps = [
                        ValueMap::capture(icc),
                        ValueMap::capture(icf),
                        ValueMap::capture(ifc),
                        ValueMap::capture(iff),
                    ];
                    let pft_map =
                        ValueMap::capture(famg_sparse::transpose::transpose(&index_valued(&pf)));
                    cap.push(FrozenLevel {
                        s: sp,
                        stage1: stage1_p,
                        final_c: final_p,
                        cf,
                        p: p_full.clone(),
                        tape,
                        perm_map: Some(perm_map),
                        cf_maps: Some(cf_maps),
                        pft_map: Some(pft_map),
                        rap: next.clone(),
                    });
                }

                // --- Smoother (reorders rows of `ap` in place). ---
                let smoother_span = famg_prof::scope_at("smoother_setup", lvl_idx);
                let mut ap = ap;
                let smoother = build_smoother(&mut ap, nc, None, cfg);
                drop(smoother_span);

                levels.push(Level {
                    a: ap,
                    perm: Some(ord.perm),
                    nc,
                    ops: Some(TransferOps::CfBlock { pf, pft }),
                    smoother,
                });
                stats.interp_nnz.push(p_full.nnz());
                current = next;
            } else {
                // --- Baseline path: original ordering throughout. ---
                let interp_span = famg_prof::scope_at("interp", lvl_idx);
                let cf = CfMap::new(coarsening.is_coarse.clone());
                let p = build_interp(&current, &s, &cf, stage1.as_ref(), &coarsening, ikind, cfg);
                drop(interp_span);

                let rap_span = famg_prof::scope_at("rap", lvl_idx);
                let r = transpose_par(&p);
                let next = if cfg.opt.row_fused_rap {
                    rap_row_fused(&r, &current, &p)
                } else {
                    rap_scalar_fused(&r, &current, &p)
                };
                drop(rap_span);

                #[cfg(feature = "validate")]
                validate_level(
                    levels.len(),
                    &current,
                    &s,
                    &coarsening.is_coarse,
                    usize::from(!matches!(ckind, CoarsenKind::AggressivePmis)),
                    &p,
                    &next,
                    false,
                    !matches!(ikind, InterpKind::Multipass | InterpKind::TwoStageExtendedI),
                );

                if let Some(cap) = capture.as_deref_mut() {
                    let _s = famg_prof::scope_at("capture", lvl_idx);
                    let tape = matches!(ikind, InterpKind::ExtendedI)
                        .then(|| crate::interp::ExtITape::capture(&current, &s, &cf));
                    cap.push(FrozenLevel {
                        s,
                        stage1,
                        final_c: coarsening.clone(),
                        cf,
                        p: p.clone(),
                        tape,
                        perm_map: None,
                        cf_maps: None,
                        pft_map: None,
                        rap: next.clone(),
                    });
                }

                let smoother_span = famg_prof::scope_at("smoother_setup", lvl_idx);
                let mut cur = current;
                let smoother = build_smoother(
                    &mut cur,
                    coarsening.ncoarse,
                    Some(&coarsening.is_coarse),
                    cfg,
                );
                let r_kept = cfg.opt.keep_transpose.then_some(r);
                drop(smoother_span);

                stats.interp_nnz.push(p.nnz());
                levels.push(Level {
                    a: cur,
                    perm: None,
                    nc: coarsening.ncoarse,
                    ops: Some(TransferOps::Full { p, r: r_kept }),
                    smoother,
                });
                current = next;
            }
        }

        // --- Coarsest level. ---
        let coarse_span = famg_prof::scope_at("coarse", levels.len());
        let coarse_lu = if current.nrows() <= cfg.coarse_solve_size && current.nrows() > 0 {
            LuFactor::new(&DenseMatrix::from_csr(&current))
        } else {
            None
        };
        let mut cur = current;
        let smoother = build_smoother(&mut cur, 0, None, cfg);
        levels.push(Level {
            a: cur,
            perm: None,
            nc: 0,
            ops: None,
            smoother,
        });
        drop(coarse_span);

        drop(root_span);
        let profile = famg_prof::take();
        let times = profile
            .find_root("setup")
            .map(PhaseTimes::from_span)
            .unwrap_or_default();

        Hierarchy {
            levels,
            coarse_lu,
            config: cfg.clone(),
            stats,
            times,
            profile,
        }
    }

    /// Checks the structural invariants the cycle kernels rely on,
    /// returning a typed error instead of letting a hand-built hierarchy
    /// panic mid-cycle:
    ///
    /// * at least one level, square operators throughout;
    /// * `ops == None` exactly at the last level (it is the coarsest
    ///   marker the cycle recursion terminates on);
    /// * transfer-operator dimensions consistent with `nc` and the next
    ///   level's operator;
    /// * stored permutations sized to their level.
    pub fn check_shape(&self) -> Result<(), crate::solver::SolveError> {
        use crate::solver::SolveError::MalformedHierarchy;
        let fail = |level: usize, what: &'static str| Err(MalformedHierarchy { level, what });
        if self.levels.is_empty() {
            return fail(0, "hierarchy has no levels");
        }
        for (i, lvl) in self.levels.iter().enumerate() {
            let n = lvl.a.nrows();
            if lvl.a.ncols() != n {
                return fail(i, "level operator is not square");
            }
            if let Some(q) = &lvl.perm {
                if q.forward.len() != n {
                    return fail(i, "permutation length differs from the level size");
                }
            }
            let last = i + 1 == self.levels.len();
            let Some(ops) = &lvl.ops else {
                if last {
                    continue;
                }
                return fail(i, "non-coarsest level is missing its transfer operators");
            };
            if last {
                return fail(i, "coarsest level carries transfer operators");
            }
            let nc = lvl.nc;
            if self.levels[i + 1].a.nrows() != nc {
                return fail(i, "next level's row count differs from nc");
            }
            match ops {
                TransferOps::Full { p, r } => {
                    if p.nrows() != n || p.ncols() != nc {
                        return fail(i, "interpolation operator has wrong dimensions");
                    }
                    if let Some(rt) = r {
                        if rt.nrows() != nc || rt.ncols() != n {
                            return fail(i, "cached restriction has wrong dimensions");
                        }
                    }
                }
                TransferOps::CfBlock { pf, pft } => {
                    if nc > n {
                        return fail(i, "nc exceeds the level size");
                    }
                    if pf.nrows() != n - nc || pf.ncols() != nc {
                        return fail(i, "P_F block has wrong dimensions");
                    }
                    if pft.nrows() != nc || pft.ncols() != n - nc {
                        return fail(i, "P_F transpose has wrong dimensions");
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Rows at the finest level.
    pub fn n(&self) -> usize {
        self.levels[0].a.nrows()
    }
}

/// Extracts rows `nc..n` of a full interpolation operator (whose first
/// `nc` rows must be the identity) as the `P_F` block.
pub(crate) fn extract_fine_block(p: &Csr, nc: usize) -> Csr {
    let n = p.nrows();
    debug_assert!(
        (0..nc).all(|i| p.row_nnz(i) == 1 && p.row_cols(i)[0] == i && p.row_vals(i)[0] == 1.0),
        "top block of CF-permuted P must be the identity"
    );
    let rowptr: Vec<usize> = p.rowptr()[nc..=n]
        .iter()
        .map(|&x| x - p.rowptr()[nc])
        .collect();
    let lo = p.rowptr()[nc];
    Csr::from_parts_unchecked(
        n - nc,
        p.ncols(),
        rowptr,
        p.colidx()[lo..].to_vec(),
        p.values()[lo..].to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use famg_matgen::{laplace2d, laplace3d_7pt};

    #[test]
    fn builds_multiple_levels_opt() {
        let a = laplace2d(32, 32);
        let h = Hierarchy::build(&a, &AmgConfig::single_node_paper());
        assert!(h.num_levels() >= 3, "levels: {}", h.num_levels());
        // Levels shrink.
        for w in h.stats.level_rows.windows(2) {
            assert!(w[1] < w[0]);
        }
        // Coarsest small enough for LU.
        assert!(h.coarse_lu.is_some());
    }

    #[test]
    fn builds_multiple_levels_baseline() {
        let a = laplace2d(32, 32);
        let h = Hierarchy::build(&a, &AmgConfig::single_node_baseline());
        assert!(h.num_levels() >= 3);
        assert!(h.coarse_lu.is_some());
        // Baseline keeps full P.
        match h.levels[0].ops.as_ref().unwrap() {
            TransferOps::Full { p, r } => {
                assert_eq!(p.nrows(), a.nrows());
                assert!(r.is_none(), "baseline must not keep the transpose");
            }
            TransferOps::CfBlock { .. } => panic!("baseline should use Full ops"),
        }
    }

    #[test]
    fn operator_complexity_bounded() {
        // With ei(4) truncation the paper keeps operator complexity
        // small; ours must stay well below 3 on a 2D Laplacian.
        let a = laplace2d(40, 40);
        let h = Hierarchy::build(&a, &AmgConfig::single_node_paper());
        let oc = h.stats.operator_complexity();
        assert!(oc > 1.0 && oc < 3.0, "operator complexity {oc}");
    }

    #[test]
    fn baseline_and_opt_same_grid_sizes() {
        // Same seed, same coarsening -> identical level dimensions.
        let a = laplace3d_7pt(10, 10, 10);
        let hb = Hierarchy::build(&a, &AmgConfig::single_node_baseline());
        let ho = Hierarchy::build(&a, &AmgConfig::single_node_paper());
        assert_eq!(hb.stats.level_rows, ho.stats.level_rows);
    }

    #[test]
    fn max_levels_respected() {
        let a = laplace2d(64, 64);
        let mut cfg = AmgConfig::single_node_paper();
        cfg.max_levels = 3;
        let h = Hierarchy::build(&a, &cfg);
        assert!(h.num_levels() <= 3);
    }

    #[test]
    fn coarse_block_identity_extraction() {
        let p = Csr::from_triplets(
            4,
            2,
            vec![(0, 0, 1.0), (1, 1, 1.0), (2, 0, 0.5), (3, 1, 0.25)],
        );
        let pf = extract_fine_block(&p, 2);
        assert_eq!(pf.nrows(), 2);
        assert_eq!(pf.get(0, 0), Some(0.5));
        assert_eq!(pf.get(1, 1), Some(0.25));
    }

    #[test]
    fn tiny_matrix_single_level() {
        let a = laplace2d(4, 4); // 16 <= coarse_solve_size
        let h = Hierarchy::build(&a, &AmgConfig::single_node_paper());
        assert_eq!(h.num_levels(), 1);
        assert!(h.coarse_lu.is_some());
    }

    #[test]
    fn aggressive_configs_build() {
        let a = laplace2d(32, 32);
        for cfg in [AmgConfig::multi_node_mp(), AmgConfig::multi_node_2s_ei444()] {
            let h = Hierarchy::build(&a, &cfg);
            assert!(h.num_levels() >= 2, "{:?}", cfg.interp);
            // Aggressive coarsening shrinks level 1 harder than standard.
            let ratio = h.stats.level_rows[1] as f64 / h.stats.level_rows[0] as f64;
            assert!(ratio < 0.2, "ratio {ratio} for {:?}", cfg.interp);
        }
    }
}

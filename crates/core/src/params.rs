//! Solver configuration, mirroring the paper's Tables 3 and 4.

/// Multigrid cycle type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleKind {
    /// One coarse-grid correction per level (the paper's cycle).
    V,
    /// Two coarse-grid corrections per level (more robust, more work).
    W,
    /// Full-multigrid style: an F-recursion followed by a V-recursion at
    /// each level.
    F,
}

/// Coarsening algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoarsenKind {
    /// Parallel Modified Independent Set (De Sterck–Yang–Heys), the
    /// paper's single-node choice (Table 3).
    Pmis,
    /// Aggressive coarsening: PMIS applied twice (a second pass over the
    /// distance-2 strength graph of the first pass's C-points), used on
    /// the top levels of the multi-node configurations (Table 4).
    AggressivePmis,
}

/// Interpolation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpKind {
    /// Direct interpolation (distance-1, textbook baseline).
    Direct,
    /// Classical Ruge–Stüben interpolation (distance-1 with F-F
    /// distribution through common coarse points).
    Classical,
    /// Extended+i (distance-2) interpolation [De Sterck et al. 2008] —
    /// the paper's single-node default, `ei(4)` in Fig. 6/8.
    ExtendedI,
    /// Multipass interpolation [Stüben 1999] for aggressive coarsening —
    /// `mp` in Fig. 6/8.
    Multipass,
    /// Two-stage extended+i for aggressive coarsening [Yang 2010] —
    /// `2s-ei(444)` in Fig. 6/8.
    TwoStageExtendedI,
}

/// Smoother used in the V-cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmootherKind {
    /// Weighted Jacobi (fully parallel).
    Jacobi,
    /// Hybrid Gauss-Seidel: GS within a parallel task, Jacobi across
    /// tasks — the paper's default.
    HybridGs,
    /// Lexicographic Gauss-Seidel with level scheduling (wavefront
    /// parallelism over the dependency DAG).
    LexicographicGs,
    /// Multi-color Gauss-Seidel (greedy coloring, color-parallel sweeps).
    MulticolorGs,
    /// ℓ1-Jacobi (reference \[26\]): unconditionally SPD-convergent.
    L1Jacobi,
    /// ℓ1-scaled hybrid Gauss-Seidel (reference \[26\]).
    L1HybridGs,
    /// Chebyshev polynomial smoothing (degree 2, reference \[26\]).
    Chebyshev,
}

/// Per-optimization switches so each paper optimization can be ablated
/// independently. `OptFlags::all()` is the paper's `HYPRE_opt`,
/// `OptFlags::none()` is `HYPRE_base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptFlags {
    /// One-pass SpGEMM with per-thread chunks instead of two-pass (§3.1.1).
    pub one_pass_spgemm: bool,
    /// Row-fused RAP (Fig. 1a) instead of scalar-fused (Fig. 1b).
    pub row_fused_rap: bool,
    /// CF permutation + identity-block RAP and interpolation/restriction.
    pub cf_reorder: bool,
    /// Keep `R = Pᵀ` from setup instead of transposing per restriction.
    pub keep_transpose: bool,
    /// Reordered hybrid GS (Fig. 2b) instead of branchy baseline (Fig. 2a).
    pub reordered_smoother: bool,
    /// Fused SpMV + inner product for residual norms (§3.3).
    pub fused_residual_norm: bool,
    /// Fuse interpolation truncation into row construction (§3.1.2).
    pub fused_truncation: bool,
    /// Pick the SpGEMM kernel per product by estimated flops: cache-resident
    /// products take the two-pass kernel (whose second pass writes straight
    /// into the exact-sized output, beating the one-pass chunk copy on small
    /// levels — the 4.2 ms vs 5.0 ms anomaly in EXPERIMENTS.md), large ones
    /// take the one-pass kernel. When off, `one_pass_spgemm` alone decides,
    /// so the ablation bins can still force either kernel unconditionally.
    pub adaptive_spgemm: bool,
}

impl OptFlags {
    /// Every optimization enabled — the paper's `HYPRE_opt`.
    pub const fn all() -> Self {
        OptFlags {
            one_pass_spgemm: true,
            row_fused_rap: true,
            cf_reorder: true,
            keep_transpose: true,
            reordered_smoother: true,
            fused_residual_norm: true,
            fused_truncation: true,
            adaptive_spgemm: true,
        }
    }

    /// Every optimization disabled — the paper's `HYPRE_base`.
    pub const fn none() -> Self {
        OptFlags {
            one_pass_spgemm: false,
            row_fused_rap: false,
            cf_reorder: false,
            keep_transpose: false,
            reordered_smoother: false,
            fused_residual_norm: false,
            fused_truncation: false,
            adaptive_spgemm: false,
        }
    }
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags::all()
    }
}

/// Full AMG configuration.
#[derive(Debug, Clone)]
pub struct AmgConfig {
    /// Strength threshold `α` (Table 3 uses 0.25 or 0.6 per matrix).
    pub strength_threshold: f64,
    /// Rows whose `|Σ_j a_ij| / |a_ii|` exceeds this are treated as having
    /// no strong connections (Table 3: 0.8).
    pub max_row_sum: f64,
    /// Maximum number of multigrid levels (Table 3: 7; Table 4: 16).
    pub max_levels: usize,
    /// Stop coarsening when a level has at most this many rows; that
    /// level is solved directly with dense LU.
    pub coarse_solve_size: usize,
    /// Coarsening on the top `aggressive_levels` levels (Table 4 applies
    /// aggressive coarsening to the top level only).
    pub coarsen: CoarsenKind,
    /// Number of levels that use `coarsen`/`interp`; deeper levels fall
    /// back to PMIS + extended+i (the Table 4 "other levels: ei(4)" rule).
    pub aggressive_levels: usize,
    /// Interpolation used on the aggressive levels.
    pub interp: InterpKind,
    /// Interpolation truncation factor (Table 3: 0.1).
    pub trunc_factor: f64,
    /// Maximum interpolation entries per row (Table 3: 4).
    pub max_elements: usize,
    /// Cycle type (Table 3: V).
    pub cycle: CycleKind,
    /// Smoother (Table 3: hybrid GS).
    pub smoother: SmootherKind,
    /// Pre/post smoothing sweeps per level (HYPRE default: 1 each).
    pub num_sweeps: usize,
    /// Relative residual reduction target (Table 3: 1e-7).
    pub tolerance: f64,
    /// Iteration cap for standalone AMG.
    pub max_iterations: usize,
    /// Seed for the PMIS random weights.
    pub seed: u64,
    /// Task count for the task-decomposed smoothers (hybrid GS and its ℓ1
    /// variant). `None` (the default) uses the thread-pool size, which is
    /// fastest but makes the smoother's *iteration behaviour* depend on the
    /// pool: hybrid GS is Jacobi across tasks, so its decomposition is part
    /// of the numerical method. Pin this to a fixed value to get bitwise
    /// identical solves across pool sizes (the thread-independence tests
    /// do exactly that).
    pub smoother_tasks: Option<usize>,
    /// Which paper optimizations are active.
    pub opt: OptFlags,
}

impl Default for AmgConfig {
    fn default() -> Self {
        AmgConfig::single_node_paper()
    }
}

impl AmgConfig {
    /// Table 3: the single-node evaluation settings (standalone AMG,
    /// V-cycle, `max_levels = 7`, PMIS, extended+i with `trunc = 0.1`,
    /// `max_elmts = 4`, hybrid GS, relative tolerance 1e-7).
    pub fn single_node_paper() -> Self {
        AmgConfig {
            strength_threshold: 0.25,
            max_row_sum: 0.8,
            max_levels: 7,
            coarse_solve_size: 64,
            coarsen: CoarsenKind::Pmis,
            aggressive_levels: 0,
            interp: InterpKind::ExtendedI,
            trunc_factor: 0.1,
            max_elements: 4,
            cycle: CycleKind::V,
            smoother: SmootherKind::HybridGs,
            num_sweeps: 1,
            tolerance: 1e-7,
            max_iterations: 200,
            seed: 0xFA6,
            smoother_tasks: None,
            opt: OptFlags::all(),
        }
    }

    /// The same settings with every optimization disabled (`HYPRE_base`).
    pub fn single_node_baseline() -> Self {
        AmgConfig {
            opt: OptFlags::none(),
            ..AmgConfig::single_node_paper()
        }
    }

    /// Table 4 `ei(4)`: extended+i on every level, `max_levels = 16`.
    pub fn multi_node_ei4() -> Self {
        AmgConfig {
            max_levels: 16,
            ..AmgConfig::single_node_paper()
        }
    }

    /// Table 4 `mp`: aggressive PMIS + multipass interpolation on the top
    /// level, `ei(4)` below.
    pub fn multi_node_mp() -> Self {
        AmgConfig {
            max_levels: 16,
            coarsen: CoarsenKind::AggressivePmis,
            aggressive_levels: 1,
            interp: InterpKind::Multipass,
            ..AmgConfig::single_node_paper()
        }
    }

    /// Table 4 `2s-ei(444)`: aggressive PMIS + 2-stage extended+i with
    /// truncation at every stage on the top level, `ei(4)` below.
    pub fn multi_node_2s_ei444() -> Self {
        AmgConfig {
            max_levels: 16,
            coarsen: CoarsenKind::AggressivePmis,
            aggressive_levels: 1,
            interp: InterpKind::TwoStageExtendedI,
            ..AmgConfig::single_node_paper()
        }
    }

    /// Effective (coarsen, interp) pair at multigrid level `level`.
    pub fn level_scheme(&self, level: usize) -> (CoarsenKind, InterpKind) {
        if level < self.aggressive_levels {
            (self.coarsen, self.interp)
        } else if self.aggressive_levels > 0 {
            // "Other levels: ei(4)" per Table 4.
            (CoarsenKind::Pmis, InterpKind::ExtendedI)
        } else {
            (self.coarsen, self.interp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table3() {
        let c = AmgConfig::single_node_paper();
        assert_eq!(c.strength_threshold, 0.25);
        assert_eq!(c.max_row_sum, 0.8);
        assert_eq!(c.max_levels, 7);
        assert_eq!(c.trunc_factor, 0.1);
        assert_eq!(c.max_elements, 4);
        assert_eq!(c.tolerance, 1e-7);
        assert_eq!(c.interp, InterpKind::ExtendedI);
        assert_eq!(c.smoother, SmootherKind::HybridGs);
    }

    #[test]
    fn baseline_disables_everything() {
        let c = AmgConfig::single_node_baseline();
        assert_eq!(c.opt, OptFlags::none());
        assert!(!c.opt.row_fused_rap);
    }

    #[test]
    fn level_scheme_falls_back_below_aggressive_levels() {
        let c = AmgConfig::multi_node_mp();
        assert_eq!(
            c.level_scheme(0),
            (CoarsenKind::AggressivePmis, InterpKind::Multipass)
        );
        assert_eq!(
            c.level_scheme(1),
            (CoarsenKind::Pmis, InterpKind::ExtendedI)
        );
        let e = AmgConfig::multi_node_ei4();
        assert_eq!(
            e.level_scheme(3),
            (CoarsenKind::Pmis, InterpKind::ExtendedI)
        );
    }
}

//! Row partitioning and prefix-sum helpers shared by every parallel kernel.
//!
//! The paper's kernels assign each thread a contiguous block of rows with a
//! roughly equal number of *non-zeros* (not rows): load balance on sparse
//! matrices is governed by nnz. `split_rows_by_nnz` reproduces HYPRE's
//! `hypre_partition` behaviour used for the parallel transpose and SpGEMM.

/// Splits `0..nrows` into at most `nparts` contiguous ranges such that each
/// range holds a roughly equal share of non-zeros according to `rowptr`.
///
/// Always returns at least one range when `nrows > 0`; never returns empty
/// ranges. The concatenation of the ranges is exactly `0..nrows`.
pub fn split_rows_by_nnz(rowptr: &[usize], nparts: usize) -> Vec<std::ops::Range<usize>> {
    let nrows = rowptr.len() - 1;
    if nrows == 0 {
        return Vec::new();
    }
    let nparts = nparts.max(1).min(nrows);
    let total = rowptr[nrows];
    let mut out = Vec::with_capacity(nparts);
    let mut start = 0usize;
    for p in 0..nparts {
        if start >= nrows {
            break;
        }
        // Target cumulative nnz at the end of partition p.
        let target = (total as u128 * (p as u128 + 1) / nparts as u128) as usize;
        let mut end = match rowptr[start + 1..=nrows].binary_search(&target) {
            Ok(k) | Err(k) => start + 1 + k,
        };
        // Leave at least one row per remaining partition where possible.
        let remaining_parts = nparts - p - 1;
        if nrows - end < remaining_parts {
            end = nrows - remaining_parts;
        }
        if end <= start {
            end = start + 1;
        }
        if p == nparts - 1 {
            end = nrows;
        }
        out.push(start..end);
        start = end;
    }
    debug_assert_eq!(out.first().map(|r| r.start), Some(0));
    debug_assert_eq!(out.last().map(|r| r.end), Some(nrows));
    out
}

/// Splits `0..n` into at most `nparts` contiguous near-equal ranges.
pub fn split_evenly(n: usize, nparts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let nparts = nparts.max(1).min(n);
    (0..nparts)
        .map(|p| {
            let s = n * p / nparts;
            let e = n * (p + 1) / nparts;
            s..e
        })
        .collect()
}

/// Exclusive prefix sum in place: `a[i] <- sum(a[..i])`; returns the total.
pub fn exclusive_prefix_sum(a: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in a.iter_mut() {
        let v = *x;
        *x = acc;
        acc += v;
    }
    acc
}

/// Parallel-friendly exclusive prefix sum: computed per-chunk then fixed up.
/// For the sizes famg handles the sequential scan is memory-bound anyway,
/// so this is a straightforward two-pass blocked implementation.
pub fn exclusive_prefix_sum_blocked(a: &mut [usize], block: usize) -> usize {
    if a.is_empty() {
        return 0;
    }
    let block = block.max(1);
    let nblocks = a.len().div_ceil(block);
    let mut block_sums = Vec::with_capacity(nblocks);
    for b in 0..nblocks {
        let s = b * block;
        let e = ((b + 1) * block).min(a.len());
        block_sums.push(a[s..e].iter().sum::<usize>());
    }
    let total = exclusive_prefix_sum(&mut block_sums);
    for b in 0..nblocks {
        let s = b * block;
        let e = ((b + 1) * block).min(a.len());
        let mut acc = block_sums[b];
        for x in &mut a[s..e] {
            let v = *x;
            *x = acc;
            acc += v;
        }
    }
    total
}

/// The number of worker threads famg kernels should use.
///
/// Follows rayon's current pool size so `RAYON_NUM_THREADS` controls both
/// rayon-based kernels and the scoped-thread kernels in this crate.
pub fn num_threads() -> usize {
    rayon::current_num_threads().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_evenly_covers() {
        let parts = split_evenly(10, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], 0..3);
        assert_eq!(parts[2].end, 10);
        let total: usize = parts.iter().map(std::iter::ExactSizeIterator::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn split_evenly_more_parts_than_items() {
        let parts = split_evenly(2, 8);
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn split_by_nnz_balances() {
        // rows with nnz 10, 1, 1, 1, 1, 10
        let rowptr = vec![0, 10, 11, 12, 13, 14, 24];
        let parts = split_rows_by_nnz(&rowptr, 2);
        assert_eq!(parts.len(), 2);
        let nnz0: usize = rowptr[parts[0].end] - rowptr[parts[0].start];
        let nnz1: usize = rowptr[parts[1].end] - rowptr[parts[1].start];
        assert!(nnz0.abs_diff(nnz1) <= 10);
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts[1].end, 6);
        assert_eq!(parts[0].end, parts[1].start);
    }

    #[test]
    fn split_by_nnz_empty_rows() {
        let rowptr = vec![0, 0, 0, 0, 5];
        let parts = split_rows_by_nnz(&rowptr, 4);
        let total: usize = parts.iter().map(std::iter::ExactSizeIterator::len).sum();
        assert_eq!(total, 4);
        assert!(parts.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn split_by_nnz_single_row() {
        let rowptr = vec![0, 7];
        let parts = split_rows_by_nnz(&rowptr, 8);
        assert_eq!(parts, vec![0..1]);
    }

    #[test]
    fn prefix_sum_basic() {
        let mut a = vec![1, 2, 3, 4];
        let total = exclusive_prefix_sum(&mut a);
        assert_eq!(total, 10);
        assert_eq!(a, vec![0, 1, 3, 6]);
    }

    #[test]
    fn prefix_sum_blocked_matches_sequential() {
        for block in [1, 2, 3, 7, 100] {
            let mut a: Vec<usize> = (0..23).map(|i| (i * 7 + 3) % 11).collect();
            let mut b = a.clone();
            let t1 = exclusive_prefix_sum(&mut a);
            let t2 = exclusive_prefix_sum_blocked(&mut b, block);
            assert_eq!(t1, t2);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn prefix_sum_empty() {
        let mut a: Vec<usize> = vec![];
        assert_eq!(exclusive_prefix_sum(&mut a), 0);
        assert_eq!(exclusive_prefix_sum_blocked(&mut a, 4), 0);
    }
}

//! Sparse matrix transpose.
//!
//! The paper parallelizes the transpose with a *parallel counting sort*
//! (§3.3): each thread owns a contiguous, nnz-balanced block of input rows,
//! counts entries per output row into a private histogram, the histograms
//! are combined with a prefix-sum, and a second sweep scatters entries.
//! Entries within each output row come out ordered by input row index, so
//! the result has sorted rows whenever input column indices are unique.
//!
//! Also provided: the `keep the transpose` policy helper used by the solve
//! phase — the baseline HYPRE re-transposed `P` on every restriction; famg
//! computes `R = Pᵀ` once during setup and reuses it.
#![deny(unsafe_op_in_unsafe_fn)]

use crate::csr::Csr;
use crate::partition::split_rows_by_nnz;

/// Sequential counting-sort transpose.
pub fn transpose(a: &Csr) -> Csr {
    let (nrows, ncols, nnz) = (a.nrows(), a.ncols(), a.nnz());
    let mut counts = vec![0usize; ncols];
    for &c in a.colidx() {
        counts[c] += 1;
    }
    let mut rp = vec![0usize; ncols + 1];
    for j in 0..ncols {
        rp[j + 1] = rp[j] + counts[j];
    }
    let mut cursor = rp[..ncols].to_vec();
    let mut colidx = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    for i in 0..nrows {
        for (c, v) in a.row_iter(i) {
            let dst = cursor[c];
            cursor[c] += 1;
            colidx[dst] = i;
            values[dst] = v;
        }
    }
    Csr::from_parts_unchecked(ncols, nrows, rp, colidx, values)
}

/// Parallel counting-sort transpose with nnz-balanced row blocks.
///
/// Produces output bitwise identical to [`transpose`] for any thread count:
/// each thread scatters into per-(thread, output-row) disjoint ranges whose
/// order matches the sequential sweep.
// ALLOC: the solve-path caller is the ReTranspose ablation baseline,
// which deliberately re-transposes R every cycle to measure what the
// cached-transpose production path saves; its allocations are the
// quantity under test.
pub fn transpose_par(a: &Csr) -> Csr {
    let (nrows, ncols, nnz) = (a.nrows(), a.ncols(), a.nnz());
    let nthreads = crate::partition::num_threads();
    if nrows < 1024 || nthreads == 1 {
        return transpose(a);
    }
    let blocks = split_rows_by_nnz(a.rowptr(), nthreads);

    // Phase 1: per-block histograms of output-row counts.
    let mut hists: Vec<Vec<usize>> = {
        use rayon::prelude::*;
        blocks
            .par_iter()
            .map(|r| {
                let mut h = vec![0usize; ncols];
                for i in r.clone() {
                    for &c in a.row_cols(i) {
                        h[c] += 1;
                    }
                }
                h
            })
            .collect()
    };

    // Phase 2: column-major prefix sum over (block, col) so block b's
    // entries for output row c land after blocks 0..b's entries — this is
    // what makes the result identical to the sequential transpose.
    let mut rowptr = vec![0usize; ncols + 1];
    for c in 0..ncols {
        let mut col_total = 0usize;
        for h in &mut hists {
            let v = h[c];
            h[c] = col_total; // becomes block-local base within row c
            col_total += v;
        }
        rowptr[c + 1] = col_total;
    }
    for c in 0..ncols {
        rowptr[c + 1] += rowptr[c];
    }

    // Phase 3: scatter.
    let mut colidx = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    {
        // Each thread scatters into per-(block, output-row) ranges that are
        // disjoint by construction, so raw-pointer writes cannot alias.
        struct Ptr(*mut usize, *mut f64);
        // SAFETY: threads write through the pointers only at indices in
        // their own (block, output-row) ranges, which are disjoint by
        // the phase-2 prefix sum; nobody reads until the scope joins.
        unsafe impl Sync for Ptr {}
        let p = Ptr(colidx.as_mut_ptr(), values.as_mut_ptr());
        rayon::scope(|s| {
            for (b, r) in blocks.iter().enumerate() {
                let base = &hists[b];
                let rowptr = &rowptr;
                let p = &p;
                let r = r.clone();
                s.spawn(move |_| {
                    let mut cursor = base.clone();
                    for i in r {
                        for (c, v) in a.row_iter(i) {
                            let dst = rowptr[c] + cursor[c];
                            cursor[c] += 1;
                            // SAFETY: (block, col) ranges are disjoint:
                            // dst in [rowptr[c]+base[c], rowptr[c]+base[c]+hist)
                            unsafe {
                                *p.0.add(dst) = i;
                                *p.1.add(dst) = v;
                            }
                        }
                    }
                });
            }
        });
    }
    Csr::from_parts_unchecked(ncols, nrows, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_triplets(
            3,
            4,
            vec![
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
                (2, 3, 6.0),
            ],
        )
    }

    #[test]
    fn transpose_small() {
        let a = sample();
        let t = transpose(&a);
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.get(0, 0), Some(1.0));
        assert_eq!(t.get(3, 0), Some(2.0));
        assert_eq!(t.get(0, 2), Some(4.0));
        assert_eq!(t.nnz(), a.nnz());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = sample();
        let tt = transpose(&transpose(&a));
        assert_eq!(a.to_dense(), tt.to_dense());
    }

    #[test]
    fn transpose_rows_sorted() {
        let a = sample();
        assert!(transpose(&a).rows_sorted());
    }

    #[test]
    fn transpose_empty_rows_and_cols() {
        let a = Csr::from_triplets(4, 4, vec![(1, 2, 1.5)]);
        let t = transpose(&a);
        assert_eq!(t.row_nnz(0), 0);
        assert_eq!(t.row_nnz(2), 1);
        assert_eq!(t.get(2, 1), Some(1.5));
    }

    #[test]
    fn parallel_matches_sequential_large() {
        // Deterministic pseudo-random matrix, large enough to hit the
        // parallel path.
        let n = 3000;
        let mut trips = Vec::new();
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for i in 0..n {
            for k in 0..(1 + next() % 6) {
                let j = (i + k * 37 + next() % 50) % n;
                trips.push((i, j, (next() % 1000) as f64 / 100.0 + 0.01));
            }
        }
        let a = Csr::from_triplets(n, n, trips);
        let t1 = transpose(&a);
        let t2 = transpose_par(&a);
        assert_eq!(t1, t2); // bitwise identical
    }

    #[test]
    fn transpose_rectangular() {
        let a = Csr::from_triplets(2, 5, vec![(0, 4, 1.0), (1, 0, 2.0)]);
        let t = transpose(&a);
        assert_eq!(t.nrows(), 5);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(4, 0), Some(1.0));
        assert_eq!(t.get(0, 1), Some(2.0));
    }

    #[test]
    fn transpose_zero_matrix() {
        let a = Csr::zero(3, 2);
        let t = transpose(&a);
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.nnz(), 0);
    }
}

//! Row/column permutations and the CF (coarse-first) reordering of §3.1.2.
//!
//! The paper renumbers grid points so all coarse points precede all fine
//! points, permuting `A` symmetrically and `P` by rows. With that ordering:
//!
//! * `P = [I; P_F]` — its top block is the identity (coarse error
//!   interpolates to itself in classical AMG), so triple products and
//!   interpolation/restriction SpMVs can skip the identity block,
//! * C-F relaxation sweeps become two loops over contiguous ranges instead
//!   of a per-row `is_coarse` branch,
//! * within each permuted row, columns can be *partially sorted* into the
//!   three groups extended+i interpolation distinguishes (coarse with
//!   non-negative coefficient / coarse with negative coefficient / fine)
//!   in one O(nnz) sweep.

use crate::csr::Csr;

/// A permutation `new_index = perm[old_index]` together with its inverse.
#[derive(Debug, Clone)]
pub struct Permutation {
    /// `old -> new`.
    pub forward: Vec<usize>,
    /// `new -> old`.
    pub inverse: Vec<usize>,
}

impl Permutation {
    /// Builds from an `old -> new` map, validating bijectivity.
    pub fn from_forward(forward: Vec<usize>) -> Self {
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            assert!(new < n, "permutation target out of range");
            assert_eq!(inverse[new], usize::MAX, "permutation not injective");
            inverse[new] = old;
        }
        Permutation { forward, inverse }
    }

    /// The identity permutation on `n` points.
    pub fn identity(n: usize) -> Self {
        Permutation {
            forward: (0..n).collect(),
            inverse: (0..n).collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True when the permutation is over zero points.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Permutes a vector: `out[perm[i]] = v[i]`.
    pub fn apply_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.len());
        let mut out = vec![0.0; v.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            out[new] = v[old];
        }
        out
    }

    /// Un-permutes a vector: `out[i] = v[perm[i]]`.
    pub fn unapply_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.len());
        let mut out = vec![0.0; v.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            out[old] = v[new];
        }
        out
    }

    /// Permutes into a caller-provided buffer: `out[perm[i]] = v[i]`
    /// (the allocation-free twin of [`Permutation::apply_vec`], used by
    /// solve-phase hot loops).
    pub fn apply_vec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.len()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
        assert_eq!(out.len(), self.len()); // PANIC-FREE: see above.
        for (old, &new) in self.forward.iter().enumerate() {
            out[new] = v[old];
        }
    }

    /// Un-permutes into a caller-provided buffer: `out[i] = v[perm[i]]`.
    pub fn unapply_vec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.len()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
        assert_eq!(out.len(), self.len()); // PANIC-FREE: see above.
        for (old, &new) in self.forward.iter().enumerate() {
            out[old] = v[new];
        }
    }

    /// Permutes a block vector row-wise: `out.row(perm[i]) = v.row(i)`.
    /// Whole rows move, so column `j` sees exactly
    /// [`Permutation::apply_vec_into`] on the extracted column.
    pub fn apply_multi_into(&self, v: &crate::MultiVec, out: &mut crate::MultiVec) {
        assert_eq!(v.n(), self.len()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
        assert_eq!(out.n(), self.len()); // PANIC-FREE: see above.
        assert_eq!(v.k(), out.k()); // PANIC-FREE: see above.
        let k = v.k();
        let (vd, od) = (v.data(), out.data_mut());
        for (old, &new) in self.forward.iter().enumerate() {
            od[new * k..(new + 1) * k].copy_from_slice(&vd[old * k..(old + 1) * k]);
        }
    }

    /// Un-permutes a block vector row-wise: `out.row(i) = v.row(perm[i])`.
    pub fn unapply_multi_into(&self, v: &crate::MultiVec, out: &mut crate::MultiVec) {
        assert_eq!(v.n(), self.len()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
        assert_eq!(out.n(), self.len()); // PANIC-FREE: see above.
        assert_eq!(v.k(), out.k()); // PANIC-FREE: see above.
        let k = v.k();
        let (vd, od) = (v.data(), out.data_mut());
        for (old, &new) in self.forward.iter().enumerate() {
            od[old * k..(old + 1) * k].copy_from_slice(&vd[new * k..(new + 1) * k]);
        }
    }
}

/// Builds the coarse-first permutation from a CF marker array
/// (`true` = coarse). Coarse points keep their relative order and map to
/// `0..ncoarse`; fine points follow. Returns the permutation and `ncoarse`.
pub fn cf_permutation(is_coarse: &[bool]) -> (Permutation, usize) {
    let n = is_coarse.len();
    let ncoarse = is_coarse.iter().filter(|&&c| c).count();
    let mut forward = vec![0usize; n];
    let mut next_c = 0usize;
    let mut next_f = ncoarse;
    for (i, &c) in is_coarse.iter().enumerate() {
        if c {
            forward[i] = next_c;
            next_c += 1;
        } else {
            forward[i] = next_f;
            next_f += 1;
        }
    }
    (Permutation::from_forward(forward), ncoarse)
}

/// Symmetric permutation `B = Q A Qᵀ`, i.e. `B[p(i), p(j)] = A[i, j]`.
/// Rows of `B` come out in the column order of the originating rows of `A`
/// (column indices are remapped, not re-sorted — downstream kernels
/// re-partition rows anyway).
pub fn permute_symmetric(a: &Csr, perm: &Permutation) -> Csr {
    assert_eq!(a.nrows(), a.ncols());
    assert_eq!(a.nrows(), perm.len());
    let n = a.nrows();
    let mut rowptr = vec![0usize; n + 1];
    for new in 0..n {
        let old = perm.inverse[new];
        rowptr[new + 1] = rowptr[new] + a.row_nnz(old);
    }
    let nnz = rowptr[n];
    let mut colidx = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    for new in 0..n {
        let old = perm.inverse[new];
        let dst = rowptr[new];
        for (k, (c, v)) in a.row_iter(old).enumerate() {
            colidx[dst + k] = perm.forward[c];
            values[dst + k] = v;
        }
    }
    Csr::from_parts_unchecked(n, n, rowptr, colidx, values)
}

/// Permutes only the rows of `a`: `B[p(i), j] = A[i, j]`.
pub fn permute_rows(a: &Csr, perm: &Permutation) -> Csr {
    assert_eq!(a.nrows(), perm.len());
    let n = a.nrows();
    let mut rowptr = vec![0usize; n + 1];
    for new in 0..n {
        let old = perm.inverse[new];
        rowptr[new + 1] = rowptr[new] + a.row_nnz(old);
    }
    let nnz = rowptr[n];
    let mut colidx = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    for new in 0..n {
        let old = perm.inverse[new];
        let dst = rowptr[new];
        colidx[dst..dst + a.row_nnz(old)].copy_from_slice(a.row_cols(old));
        values[dst..dst + a.row_nnz(old)].copy_from_slice(a.row_vals(old));
    }
    Csr::from_parts_unchecked(n, a.ncols(), rowptr, colidx, values)
}

/// Permutes only the columns of `a`: `B[i, p(j)] = A[i, j]`.
pub fn permute_cols(a: &Csr, perm: &Permutation) -> Csr {
    assert_eq!(a.ncols(), perm.len());
    let colidx: Vec<usize> = a.colidx().iter().map(|&c| perm.forward[c]).collect();
    Csr::from_parts_unchecked(
        a.nrows(),
        a.ncols(),
        a.rowptr().to_vec(),
        colidx,
        a.values().to_vec(),
    )
}

/// Splits a CF-permuted square matrix into its four blocks
/// `[A_CC A_CF; A_FC A_FF]` where the first `nc` indices are coarse.
/// Single sweep; entries keep their within-row order.
pub fn split_cf_blocks(a: &Csr, nc: usize) -> (Csr, Csr, Csr, Csr) {
    let n = a.nrows();
    assert_eq!(n, a.ncols());
    assert!(nc <= n);
    let nf = n - nc;

    /// Incremental CSR assembler for one block.
    struct Block {
        rowptr: Vec<usize>,
        colidx: Vec<usize>,
        values: Vec<f64>,
    }
    impl Block {
        fn new(nrows: usize) -> Self {
            let mut rowptr = Vec::with_capacity(nrows + 1);
            rowptr.push(0);
            Block {
                rowptr,
                colidx: Vec::new(),
                values: Vec::new(),
            }
        }
        fn close_row(&mut self) {
            self.rowptr.push(self.colidx.len());
        }
        fn finish(self, nrows: usize, ncols: usize) -> Csr {
            debug_assert_eq!(self.rowptr.len(), nrows + 1);
            Csr::from_parts_unchecked(nrows, ncols, self.rowptr, self.colidx, self.values)
        }
    }

    let mut cc = Block::new(nc);
    let mut cf = Block::new(nc);
    let mut fc = Block::new(nf);
    let mut ff = Block::new(nf);
    for i in 0..n {
        let (left, right) = if i < nc {
            (&mut cc, &mut cf)
        } else {
            (&mut fc, &mut ff)
        };
        for (c, v) in a.row_iter(i) {
            if c < nc {
                left.colidx.push(c);
                left.values.push(v);
            } else {
                right.colidx.push(c - nc);
                right.values.push(v);
            }
        }
        left.close_row();
        right.close_row();
    }
    (
        cc.finish(nc, nc),
        cf.finish(nc, nf),
        fc.finish(nf, nc),
        ff.finish(nf, nf),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_roundtrip() {
        let p = Permutation::from_forward(vec![2, 0, 1]);
        let v = vec![10.0, 20.0, 30.0];
        let w = p.apply_vec(&v);
        assert_eq!(w, vec![20.0, 30.0, 10.0]);
        assert_eq!(p.unapply_vec(&w), v);
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn non_bijective_rejected() {
        Permutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn cf_permutation_orders_coarse_first() {
        let is_coarse = vec![false, true, false, true, true];
        let (p, nc) = cf_permutation(&is_coarse);
        assert_eq!(nc, 3);
        // Coarse points 1, 3, 4 -> 0, 1, 2; fine points 0, 2 -> 3, 4.
        assert_eq!(p.forward, vec![3, 0, 4, 1, 2]);
    }

    #[test]
    fn symmetric_permutation_preserves_entries() {
        let a = Csr::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0)],
        );
        let p = Permutation::from_forward(vec![2, 0, 1]);
        let b = permute_symmetric(&a, &p);
        // B[p(i), p(j)] = A[i, j]
        assert_eq!(b.get(2, 2), Some(1.0));
        assert_eq!(b.get(2, 1), Some(2.0));
        assert_eq!(b.get(0, 0), Some(3.0));
        assert_eq!(b.get(1, 2), Some(4.0));
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn symmetric_permutation_identity_is_noop() {
        let a = Csr::from_triplets(3, 3, vec![(0, 1, 1.0), (2, 2, 5.0)]);
        let p = Permutation::identity(3);
        assert_eq!(permute_symmetric(&a, &p).to_dense(), a.to_dense());
    }

    #[test]
    fn row_and_col_permutations_compose_to_symmetric() {
        let a = Csr::from_triplets(3, 3, vec![(0, 0, 1.0), (1, 2, 2.0), (2, 1, 3.0)]);
        let p = Permutation::from_forward(vec![1, 2, 0]);
        let via_blocks = permute_cols(&permute_rows(&a, &p), &p);
        let direct = permute_symmetric(&a, &p);
        assert_eq!(via_blocks.to_dense(), direct.to_dense());
    }

    #[test]
    fn spmv_commutes_with_permutation() {
        // (QAQᵀ)(Qx) = Q(Ax)
        let a = Csr::from_triplets(
            4,
            4,
            vec![
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 1, 2.0),
                (2, 3, 1.5),
                (3, 2, 0.5),
            ],
        );
        let p = Permutation::from_forward(vec![3, 1, 0, 2]);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let pa = permute_symmetric(&a, &p);
        let px = p.apply_vec(&x);
        let mut y1 = vec![0.0; 4];
        crate::spmv::spmv_seq(&pa, &px, &mut y1);
        let mut y = vec![0.0; 4];
        crate::spmv::spmv_seq(&a, &x, &mut y);
        let py = p.apply_vec(&y);
        for (u, v) in y1.iter().zip(&py) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn cf_blocks_reassemble() {
        let a = Csr::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 2, 4.0),
                (3, 0, 5.0),
                (3, 3, 6.0),
            ],
        );
        let (cc, cf, fc, ff) = split_cf_blocks(&a, 2);
        assert_eq!(cc.get(0, 0), Some(1.0));
        assert_eq!(cf.get(0, 1), Some(2.0)); // A[0,3] -> CF[0,1]
        assert_eq!(ff.get(0, 0), Some(4.0)); // A[2,2] -> FF[0,0]
        assert_eq!(fc.get(1, 0), Some(5.0)); // A[3,0] -> FC[1,0]
        assert_eq!(ff.get(1, 1), Some(6.0));
        assert_eq!(cc.nnz() + cf.nnz() + fc.nnz() + ff.nnz(), a.nnz());
    }
}

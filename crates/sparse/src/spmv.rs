//! Sparse matrix–vector products.
//!
//! Beyond the plain kernel this module implements two solve-phase
//! optimizations from §3.2/§3.3 of the paper:
//!
//! * **Fused SpMV + inner product** (`spmv_dot`, `residual_norm`): when the
//!   output vector of an SpMV is consumed only by a dot product (the
//!   residual-norm check every iteration), fusing the two saves one full
//!   write + read of the output vector.
//! * **Identity-block skipping** (`interp_apply`, `restrict_apply`): after
//!   CF permutation the interpolation operator has the form `[I; P_F]`, so
//!   prolongation copies the coarse part and multiplies only the fine rows,
//!   and restriction starts from the coarse part of the input.

use crate::csr::Csr;
use rayon::prelude::*;

/// Minimum rows before a kernel goes parallel.
const PAR_THRESHOLD: usize = 512;

#[inline]
fn row_dot(a: &Csr, i: usize, x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (c, v) in a.row_iter(i) {
        acc += v * x[c];
    }
    acc
}

/// `y = A * x`, sequential.
pub fn spmv_seq(a: &Csr, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(y.len(), a.nrows()); // PANIC-FREE: see above.
    for i in 0..a.nrows() {
        y[i] = row_dot(a, i, x);
    }
}

/// `y = A * x`, parallel over row blocks.
pub fn spmv(a: &Csr, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(y.len(), a.nrows()); // PANIC-FREE: see above.
    if a.nrows() < PAR_THRESHOLD {
        return spmv_seq(a, x, y);
    }
    // Rows are a handful of flops each; coarse blocks keep the pool's
    // per-block bookkeeping out of the bandwidth-bound inner loop.
    y.par_iter_mut()
        .enumerate()
        .with_min_len(512)
        .for_each(|(i, yi)| *yi = row_dot(a, i, x));
}

/// `y = alpha * A * x + beta * y`.
pub fn spmv_axpby(a: &Csr, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(y.len(), a.nrows()); // PANIC-FREE: see above.
    let body = |i: usize, yi: &mut f64| {
        let v = row_dot(a, i, x);
        *yi = alpha * v + beta * *yi;
    };
    if a.nrows() < PAR_THRESHOLD {
        for (i, yi) in y.iter_mut().enumerate() {
            body(i, yi);
        }
    } else {
        y.par_iter_mut()
            .enumerate()
            .with_min_len(512)
            .for_each(|(i, yi)| body(i, yi));
    }
}

/// Fused `y = A*x` and `y . z` in one sweep; returns the dot product.
///
/// The paper fuses SpMV with the inner product that follows it so the
/// output vector is produced and consumed while still in registers/cache.
pub fn spmv_dot(a: &Csr, x: &[f64], y: &mut [f64], z: &[f64]) -> f64 {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    assert_eq!(z.len(), a.nrows());
    if a.nrows() < PAR_THRESHOLD {
        let mut acc = 0.0;
        for i in 0..a.nrows() {
            let v = row_dot(a, i, x);
            y[i] = v;
            acc += v * z[i];
        }
        return acc;
    }
    // Fixed row-chunking keeps the reduction deterministic.
    let chunk = 4096;
    y.par_chunks_mut(chunk)
        .enumerate()
        .map(|(ci, yc)| {
            let base = ci * chunk;
            let mut acc = 0.0;
            for (k, yk) in yc.iter_mut().enumerate() {
                let i = base + k;
                let v = row_dot(a, i, x);
                *yk = v;
                acc += v * z[i];
            }
            acc
        })
        .collect::<Vec<_>>()
        .into_iter()
        .sum() // DETERMINISM: fixed-size chunks combined by an ordered sequential sum.
}

/// Fused residual `r = b - A*x` with `||r||^2` returned in one sweep.
pub fn residual_norm_sq(a: &Csr, x: &[f64], b: &[f64], r: &mut [f64]) -> f64 {
    assert_eq!(x.len(), a.ncols()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(b.len(), a.nrows()); // PANIC-FREE: see above.
    assert_eq!(r.len(), a.nrows()); // PANIC-FREE: see above.
    if a.nrows() < PAR_THRESHOLD {
        let mut acc = 0.0;
        for i in 0..a.nrows() {
            let v = b[i] - row_dot(a, i, x);
            r[i] = v;
            acc += v * v;
        }
        return acc;
    }
    let chunk = 4096;
    r.par_chunks_mut(chunk)
        .enumerate()
        .map(|(ci, rc)| {
            let base = ci * chunk;
            let mut acc = 0.0;
            for (k, rk) in rc.iter_mut().enumerate() {
                let i = base + k;
                let v = b[i] - row_dot(a, i, x);
                *rk = v;
                acc += v * v;
            }
            acc
        })
        .collect::<Vec<_>>() // ALLOC: per-chunk partials for the ordered combine, O(n/4096)
        .into_iter()
        .sum() // DETERMINISM: fixed-size chunks combined by an ordered sequential sum.
}

/// Unfused reference: computes `r = b - A*x` then `||r||^2` in two sweeps.
/// Kept as the baseline twin of [`residual_norm_sq`] for the ablation bench.
pub fn residual_norm_sq_unfused(a: &Csr, x: &[f64], b: &[f64], r: &mut [f64]) -> f64 {
    spmv(a, x, r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    crate::vecops::dot(r, r)
}

/// SpMV with an 8-way unrolled inner accumulator.
///
/// The paper combines software prefetching with an 8× inner-loop unroll
/// (§3.1.1) to expose instruction-level parallelism; explicit prefetch
/// intrinsics are not available in stable safe Rust, so this kernel keeps
/// the unroll (eight independent partial sums that LLVM can schedule and
/// vectorize) as the portable substitute — benchmarked as an ablation in
/// `famg-bench`.
pub fn spmv_unrolled(a: &Csr, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    let body = |i: usize, yi: &mut f64| {
        let cols = a.row_cols(i);
        let vals = a.row_vals(i);
        let mut acc = [0.0f64; 8];
        let chunks = cols.len() / 8;
        for k in 0..chunks {
            let base = k * 8;
            for u in 0..8 {
                acc[u] += vals[base + u] * x[cols[base + u]];
            }
        }
        let mut tail = 0.0;
        for k in chunks * 8..cols.len() {
            tail += vals[k] * x[cols[k]];
        }
        *yi = acc.iter().sum::<f64>() + tail;
    };
    if a.nrows() < PAR_THRESHOLD {
        for (i, yi) in y.iter_mut().enumerate() {
            body(i, yi);
        }
    } else {
        y.par_iter_mut()
            .enumerate()
            .with_min_len(512)
            .for_each(|(i, yi)| body(i, yi));
    }
}

/// Prolongation with a CF-permuted `P = [I; P_F]`.
///
/// `xc` has `nc` coarse entries; the output fine-level vector `xf` gets
/// `xf[0..nc] = xc` (identity block) and `xf[nc..] = P_F * xc`. `pf` is the
/// fine-rows-only block with `nrows = n - nc`.
pub fn interp_apply(pf: &Csr, nc: usize, xc: &[f64], xf: &mut [f64]) {
    assert_eq!(xc.len(), nc);
    assert_eq!(pf.ncols(), nc);
    assert_eq!(xf.len(), nc + pf.nrows());
    xf[..nc].copy_from_slice(xc);
    let (_, fine) = xf.split_at_mut(nc);
    spmv(pf, xc, fine);
}

/// Prolongation-and-correct: `xf += [I; P_F] * xc` (the V-cycle update).
pub fn interp_apply_add(pf: &Csr, nc: usize, xc: &[f64], xf: &mut [f64]) {
    assert_eq!(xc.len(), nc); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(pf.ncols(), nc); // PANIC-FREE: see above.
    assert_eq!(xf.len(), nc + pf.nrows()); // PANIC-FREE: see above.
    for (o, c) in xf[..nc].iter_mut().zip(xc) {
        *o += c;
    }
    let (_, fine) = xf.split_at_mut(nc);
    spmv_axpby(pf, 1.0, xc, 1.0, fine);
}

/// Restriction with a CF-permuted `R = Pᵀ = [I  P_Fᵀ]`.
///
/// `rf` must be `P_Fᵀ` stored explicitly (kept from the setup phase — the
/// paper's "keep the transpose" optimization); the result is
/// `xc = xf[0..nc] + P_Fᵀ * xf[nc..]`.
pub fn restrict_apply(rf: &Csr, nc: usize, xf: &[f64], xc: &mut [f64]) {
    assert_eq!(rf.nrows(), nc); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(xf.len(), nc + rf.ncols()); // PANIC-FREE: see above.
    assert_eq!(xc.len(), nc); // PANIC-FREE: see above.
    xc.copy_from_slice(&xf[..nc]);
    let fine = &xf[nc..];
    spmv_axpby(rf, 1.0, fine, 1.0, xc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    fn dense_mv(d: &[f64], nrows: usize, ncols: usize, x: &[f64]) -> Vec<f64> {
        (0..nrows)
            .map(|i| (0..ncols).map(|j| d[i * ncols + j] * x[j]).sum())
            .collect()
    }

    fn random_csr(nrows: usize, ncols: usize, seed: u64) -> Csr {
        // Simple LCG-based deterministic sparse matrix.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut trips = Vec::new();
        for i in 0..nrows {
            for _ in 0..3 {
                let j = (next() as usize) % ncols;
                let v = ((next() % 100) as f64 - 50.0) / 10.0;
                trips.push((i, j, v));
            }
        }
        Csr::from_triplets(nrows, ncols, trips)
    }

    #[test]
    fn spmv_matches_dense() {
        let a = random_csr(20, 15, 7);
        let x: Vec<f64> = (0..15).map(|i| f64::from(i) * 0.3 - 1.0).collect();
        let mut y = vec![0.0; 20];
        spmv(&a, &x, &mut y);
        let expect = dense_mv(&a.to_dense(), 20, 15, &x);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn spmv_parallel_matches_sequential() {
        let n = 2000;
        let a = random_csr(n, n, 42);
        let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 * 0.1).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        spmv_seq(&a, &x, &mut y1);
        spmv(&a, &x, &mut y2);
        assert_eq!(y1, y2); // bitwise: same per-row accumulation order
    }

    #[test]
    fn unrolled_matches_plain() {
        // Rows with 11 entries so the 8-wide unroll plus tail both run.
        let trips: Vec<(usize, usize, f64)> = (0..300)
            .flat_map(|i| {
                (0..11).map(move |k| {
                    (
                        (i * 7 + k * 13) % 300,
                        (i + k * 27) % 300,
                        0.3 * k as f64 - 1.0,
                    )
                })
            })
            .collect();
        let a = Csr::from_triplets(300, 300, trips);
        let x: Vec<f64> = (0..300).map(|i| f64::from(i % 9) * 0.25 - 1.0).collect();
        let mut y1 = vec![0.0; 300];
        let mut y2 = vec![0.0; 300];
        spmv_seq(&a, &x, &mut y1);
        spmv_unrolled(&a, &x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() <= 1e-12 * u.abs().max(1.0));
        }
    }

    #[test]
    fn unrolled_handles_short_rows() {
        let a = Csr::from_triplets(3, 3, vec![(0, 0, 2.0), (1, 2, 3.0)]);
        let x = vec![1.0, 1.0, 1.0];
        let mut y = vec![0.0; 3];
        spmv_unrolled(&a, &x, &mut y);
        assert_eq!(y, vec![2.0, 3.0, 0.0]);
    }

    #[test]
    fn spmv_axpby_scales() {
        let a = Csr::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![1.0; 4];
        spmv_axpby(&a, 2.0, &x, -1.0, &mut y);
        assert_eq!(y, vec![1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn fused_dot_matches_unfused() {
        let n = 1500;
        let a = random_csr(n, n, 3);
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let z: Vec<f64> = (0..n).map(|i| ((i + 3) % 5) as f64 - 2.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        let d_fused = spmv_dot(&a, &x, &mut y1, &z);
        spmv(&a, &x, &mut y2);
        let d_ref = vecops::dot_seq(&y2, &z);
        assert_eq!(y1, y2);
        assert!((d_fused - d_ref).abs() <= 1e-9 * d_ref.abs().max(1.0));
    }

    #[test]
    fn fused_residual_matches_unfused() {
        let n = 1200;
        let a = random_csr(n, n, 9);
        let x: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 5) % 11) as f64).collect();
        let mut r1 = vec![0.0; n];
        let mut r2 = vec![0.0; n];
        let n1 = residual_norm_sq(&a, &x, &b, &mut r1);
        let n2 = residual_norm_sq_unfused(&a, &x, &b, &mut r2);
        assert_eq!(r1, r2);
        assert!((n1 - n2).abs() <= 1e-9 * n2.abs().max(1.0));
    }

    #[test]
    fn interp_identity_block() {
        // P = [I2; P_F] with P_F = [0.5 0.5; 1 0]
        let pf = Csr::from_dense(2, 2, &[0.5, 0.5, 1.0, 0.0]);
        let xc = vec![2.0, 4.0];
        let mut xf = vec![0.0; 4];
        interp_apply(&pf, 2, &xc, &mut xf);
        assert_eq!(xf, vec![2.0, 4.0, 3.0, 2.0]);
    }

    #[test]
    fn interp_add_accumulates() {
        let pf = Csr::from_dense(1, 2, &[1.0, 1.0]);
        let xc = vec![1.0, 2.0];
        let mut xf = vec![10.0, 10.0, 10.0];
        interp_apply_add(&pf, 2, &xc, &mut xf);
        assert_eq!(xf, vec![11.0, 12.0, 13.0]);
    }

    #[test]
    fn restrict_is_transpose_of_interp() {
        let pf = Csr::from_dense(2, 2, &[0.5, 0.5, 1.0, 0.0]);
        let rf = crate::transpose::transpose(&pf); // P_Fᵀ: 2x2
        let xf = vec![1.0, 2.0, 3.0, 4.0];
        let mut xc = vec![0.0; 2];
        restrict_apply(&rf, 2, &xf, &mut xc);
        // xc = xf[0..2] + P_Fᵀ * xf[2..4]
        // P_Fᵀ = [0.5 1; 0.5 0] => [0.5*3+1*4, 0.5*3] = [5.5, 1.5]
        assert_eq!(xc, vec![6.5, 3.5]);
    }
}

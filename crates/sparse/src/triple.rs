//! Galerkin triple products `R · A · P` (§3.1.1).
//!
//! Four variants, matching the paper's Fig. 1 and the CF-block identity:
//!
//! * [`rap_unfused`] — two separate SpGEMMs (`B = R·A`, then `C = B·P`);
//!   rows of the temporary `B` are streamed from memory when `C` is formed.
//! * [`rap_row_fused`] — Fig. 1(a), the paper's kernel: immediately after
//!   forming row `B_i` it is multiplied into `C_i` while cache-hot. No
//!   temporary matrix is materialized.
//! * [`rap_scalar_fused`] — Fig. 1(b), the HYPRE-baseline fusion: the
//!   product is expanded at scalar granularity
//!   (`c_il += (r_ij·a_jk)·p_kl`), which avoids the `B_i` buffer entirely
//!   but performs redundant multiplications — the paper measures 1.73×
//!   more flops than row fusion on the finest level.
//! * [`rap_cf`] — the CF-permuted decomposition
//!   `RAP = A_CC + P_Fᵀ·A_FC + (A_CF + P_Fᵀ·A_FF)·P_F`,
//!   exploiting `P = [I; P_F]` so only the fine-block participates in the
//!   expensive product.
//!
//! Each variant has a `*_flops` twin that walks the same loop structure and
//! tallies operations, reproducing the paper's 1.73× flop-ratio claim.
//!
//! [`rap_row_fused_numeric`], [`rap_scalar_fused_numeric`] and
//! [`rap_cf_numeric`] re-compute values over a frozen output pattern
//! (the triple-product analogue of [`crate::spgemm::numeric_only`]): the
//! output-side sparse accumulator is replaced by a marker array
//! pre-seeded from the frozen column indices, so every accumulation is a
//! straight indexed add. Each numeric twin walks the *exact* loop
//! structure of its full kernel, so the floating-point accumulation
//! order — and therefore every output value — is identical bit for bit.
#![deny(unsafe_op_in_unsafe_fn)]

use crate::counters::FlopCount;
use crate::csr::Csr;
use crate::partition::{num_threads, split_rows_by_nnz};
use crate::spa::Spa;
use crate::spgemm::spgemm;

/// Sparse matrix addition `alpha*A + beta*B` (same shape).
pub fn csr_add(alpha: f64, a: &Csr, beta: f64, b: &Csr) -> Csr {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let nrows = a.nrows();
    let mut spa = Spa::new(a.ncols());
    let mut rowptr = Vec::with_capacity(nrows + 1);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    rowptr.push(0);
    for i in 0..nrows {
        for (c, v) in a.row_iter(i) {
            spa.add(c, alpha * v);
        }
        for (c, v) in b.row_iter(i) {
            spa.add(c, beta * v);
        }
        spa.flush_sorted_into(&mut colidx, &mut values);
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(nrows, a.ncols(), rowptr, colidx, values)
}

/// Unfused baseline: `(R·A)·P` as two independent SpGEMM calls.
pub fn rap_unfused(r: &Csr, a: &Csr, p: &Csr) -> Csr {
    let b = spgemm(r, a);
    spgemm(&b, p)
}

/// Per-thread staging chunk shared by the fused kernels.
struct Chunk {
    row_nnz: Vec<usize>,
    colidx: Vec<usize>,
    values: Vec<f64>,
}

fn stitch(nrows: usize, ncols: usize, chunks: Vec<Chunk>) -> Csr {
    let mut rowptr = vec![0usize; nrows + 1];
    let mut idx = 0usize;
    let mut acc = 0usize;
    for c in &chunks {
        for &n in &c.row_nnz {
            rowptr[idx] = acc;
            acc += n;
            idx += 1;
        }
    }
    rowptr[nrows] = acc;
    let mut colidx = vec![0usize; acc];
    let mut values = vec![0.0f64; acc];
    let mut dst = 0usize;
    for c in &chunks {
        let n = c.colidx.len();
        colidx[dst..dst + n].copy_from_slice(&c.colidx);
        values[dst..dst + n].copy_from_slice(&c.values);
        dst += n;
    }
    Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

/// Row-fused triple product (Fig. 1a): for each row, form `B_i = R_i·A`
/// then immediately `C_i = B_i·P` while `B_i` is cache-resident.
pub fn rap_row_fused(r: &Csr, a: &Csr, p: &Csr) -> Csr {
    assert_eq!(r.ncols(), a.nrows());
    assert_eq!(a.ncols(), p.nrows());
    let nrows = r.nrows();
    let ncols = p.ncols();
    if nrows == 0 {
        return Csr::zero(0, ncols);
    }
    let blocks = split_rows_by_nnz(r.rowptr(), num_threads());
    let chunks: Vec<Chunk> = {
        use rayon::prelude::*;
        blocks
            .par_iter()
            .map(|range| {
                let mut c = Chunk {
                    row_nnz: Vec::with_capacity(range.len()),
                    colidx: Vec::new(),
                    values: Vec::new(),
                };
                let mut spa_b = Spa::new(a.ncols());
                let mut spa_c = Spa::new(ncols);
                for i in range.clone() {
                    // B_i = Σ_j r_ij · A_j
                    for (j, rv) in r.row_iter(i) {
                        for (k, av) in a.row_iter(j) {
                            spa_b.add(k, rv * av);
                        }
                    }
                    // C_i = Σ_k b_ik · P_k, consuming B_i out of cache.
                    for (pos, &k) in spa_b.cols().iter().enumerate() {
                        let bv = spa_b.vals()[pos];
                        for (l, pv) in p.row_iter(k) {
                            spa_c.add(l, bv * pv);
                        }
                    }
                    spa_b.reset();
                    let n = spa_c.flush_into(&mut c.colidx, &mut c.values);
                    c.row_nnz.push(n);
                }
                c
            })
            .collect()
    };
    stitch(nrows, ncols, chunks)
}

/// Scalar-fused triple product (Fig. 1b, HYPRE baseline): expands
/// `c_il += (r_ij · a_jk) · p_kl` without materializing `B_i`, at the cost
/// of redundant multiplications when several `(j, k)` paths reach the same
/// `a`-column `k`.
pub fn rap_scalar_fused(r: &Csr, a: &Csr, p: &Csr) -> Csr {
    assert_eq!(r.ncols(), a.nrows());
    assert_eq!(a.ncols(), p.nrows());
    let nrows = r.nrows();
    let ncols = p.ncols();
    if nrows == 0 {
        return Csr::zero(0, ncols);
    }
    let blocks = split_rows_by_nnz(r.rowptr(), num_threads());
    let chunks: Vec<Chunk> = {
        use rayon::prelude::*;
        blocks
            .par_iter()
            .map(|range| {
                let mut c = Chunk {
                    row_nnz: Vec::with_capacity(range.len()),
                    colidx: Vec::new(),
                    values: Vec::new(),
                };
                let mut spa_c = Spa::new(ncols);
                for i in range.clone() {
                    for (j, rv) in r.row_iter(i) {
                        for (k, av) in a.row_iter(j) {
                            let temp = rv * av;
                            for (l, pv) in p.row_iter(k) {
                                spa_c.add(l, temp * pv);
                            }
                        }
                    }
                    let n = spa_c.flush_into(&mut c.colidx, &mut c.values);
                    c.row_nnz.push(n);
                }
                c
            })
            .collect()
    };
    stitch(nrows, ncols, chunks)
}

/// Flop tally of the row-fused kernel (Fig. 1a loop structure).
pub fn rap_row_fused_flops(r: &Csr, a: &Csr, p: &Csr) -> FlopCount {
    let mut fc = FlopCount::default();
    let mut spa_b = Spa::new(a.ncols());
    for i in 0..r.nrows() {
        for &j in r.row_cols(i) {
            for &k in a.row_cols(j) {
                spa_b.add(k, 1.0);
                fc.muls += 1;
                fc.adds += 1;
            }
        }
        for &k in spa_b.cols() {
            let n = p.row_nnz(k) as u64;
            fc.muls += n;
            fc.adds += n;
        }
        spa_b.reset();
    }
    fc
}

/// Flop tally of the scalar-fused kernel (Fig. 1b loop structure).
pub fn rap_scalar_fused_flops(r: &Csr, a: &Csr, p: &Csr) -> FlopCount {
    let mut fc = FlopCount::default();
    for i in 0..r.nrows() {
        for &j in r.row_cols(i) {
            for &k in a.row_cols(j) {
                fc.muls += 1; // temp = r_ij * a_jk
                let n = p.row_nnz(k) as u64;
                fc.muls += n;
                fc.adds += n;
            }
        }
    }
    fc
}

/// CF-block triple product over a coarse-first permuted operator.
///
/// With `P = [I; P_F]` (first `nc` rows identity) and `A` permuted to
/// `[A_CC A_CF; A_FC A_FF]`:
///
/// ```text
/// PᵀAP = A_CC + P_Fᵀ·A_FC + (A_CF + P_Fᵀ·A_FF)·P_F
/// ```
///
/// `pft` is `P_Fᵀ` (kept from setup; also reused for restriction SpMVs).
/// Only the fine sub-blocks enter SpGEMM — the optimization is most
/// effective when the coarsening ratio `nc/n` is high.
pub fn rap_cf(a_cc: &Csr, a_cf: &Csr, a_fc: &Csr, a_ff: &Csr, pf: &Csr, pft: &Csr) -> Csr {
    let nc = a_cc.nrows();
    let nf = pf.nrows();
    assert_eq!(a_cc.ncols(), nc);
    assert_eq!(pf.ncols(), nc);
    assert_eq!(pft.nrows(), nc);
    assert_eq!(a_ff.nrows(), nf);
    if nc == 0 {
        return Csr::zero(0, 0);
    }
    // Fully fused: for each coarse row i, accumulate
    //   B_i = A_CF_i + Σ_k (P_Fᵀ)_ik · A_FF_k      (fine-width scratch)
    //   C_i = A_CC_i + Σ_k (P_Fᵀ)_ik · A_FC_k + Σ_j B_ij · P_F_j
    // without materializing any intermediate matrix — the CF analogue of
    // the Fig. 1a row fusion.
    let blocks = split_rows_by_nnz(pft.rowptr(), num_threads());
    let chunks: Vec<Chunk> = {
        use rayon::prelude::*;
        blocks
            .par_iter()
            .map(|range| {
                let mut ch = Chunk {
                    row_nnz: Vec::with_capacity(range.len()),
                    colidx: Vec::new(),
                    values: Vec::new(),
                };
                let mut spa_b = Spa::new(nf);
                let mut spa_c = Spa::new(nc);
                for i in range.clone() {
                    for (c, v) in a_cc.row_iter(i) {
                        spa_c.add(c, v);
                    }
                    for (k, w) in pft.row_iter(i) {
                        for (c, v) in a_fc.row_iter(k) {
                            spa_c.add(c, w * v);
                        }
                        for (c, v) in a_ff.row_iter(k) {
                            spa_b.add(c, w * v);
                        }
                    }
                    for (c, v) in a_cf.row_iter(i) {
                        spa_b.add(c, v);
                    }
                    for (pos, &j) in spa_b.cols().iter().enumerate() {
                        let bv = spa_b.vals()[pos];
                        for (c, pv) in pf.row_iter(j) {
                            spa_c.add(c, bv * pv);
                        }
                    }
                    spa_b.reset();
                    let n = spa_c.flush_into(&mut ch.colidx, &mut ch.values);
                    ch.row_nnz.push(n);
                }
                ch
            })
            .collect()
    };
    stitch(nc, nc, chunks)
}

/// Convenience wrapper: computes `PᵀAP` for a CF-permuted `A` given only
/// `nc` and the fine block `P_F`, deriving the four blocks and `P_Fᵀ`.
pub fn rap_cf_from_parts(a_perm: &Csr, nc: usize, pf: &Csr) -> Csr {
    let (a_cc, a_cf, a_fc, a_ff) = crate::permute::split_cf_blocks(a_perm, nc);
    let pft = crate::transpose::transpose(pf);
    rap_cf(&a_cc, &a_cf, &a_fc, &a_ff, pf, &pft)
}

/// Shared-across-the-scope write cursor for the numeric-only kernels.
struct ValuesPtr(*mut f64);
// SAFETY: each spawned block writes only the value range of its own rows
// (`rowptr[block.start]..rowptr[block.end]`), the blocks tile the row
// space disjointly, and nothing reads the buffer until the scope joins.
unsafe impl Sync for ValuesPtr {}

/// Pre-seeds `marker` with the output positions of row `i`'s frozen
/// columns and zeroes that row's values, so subsequent accumulations are
/// branch-free indexed adds. Returns the row's value range.
///
/// # Safety
/// `ptr` must point at the value buffer `rowptr`/`colidx` describe, and
/// the caller must be the only writer of row `i`'s range.
#[inline]
unsafe fn seed_row(
    marker: &mut [usize],
    rowptr: &[usize],
    colidx: &[usize],
    ptr: &ValuesPtr,
    i: usize,
) -> (usize, usize) {
    let start = rowptr[i];
    let end = rowptr[i + 1];
    for (off, &c) in colidx[start..end].iter().enumerate() {
        marker[c] = start + off;
        // SAFETY: start + off lies in row i's value range, owned
        // exclusively by this block per the function contract.
        unsafe { *ptr.0.add(start + off) = 0.0 };
    }
    (start, end)
}

/// Accumulates `v` into the frozen position of column `c`.
///
/// # Safety
/// `marker[c]` must have been seeded by [`seed_row`] for the current row
/// (guaranteed when the frozen pattern matches the inputs' product
/// structure; debug builds assert it).
#[inline]
unsafe fn add_at(marker: &[usize], ptr: &ValuesPtr, start: usize, end: usize, c: usize, v: f64) {
    let pos = marker[c];
    debug_assert!(pos >= start && pos < end, "pattern mismatch");
    // SAFETY: pos lies in the current row's value range per the contract.
    unsafe { *ptr.0.add(pos) += v };
}

/// Numeric-only row-fused triple product: recomputes `C = R·A·P` over the
/// frozen pattern of a prior [`rap_row_fused`] with the same inputs'
/// sparsity. Mirrors the full kernel's loop structure exactly, so the
/// result is bitwise identical to re-running [`rap_row_fused`].
///
/// # Panics
/// Debug builds panic if the product structure deviates from `c`'s
/// pattern; release builds require the caller to guarantee it (the
/// `famg-core` refresh path checks the finest-level pattern up front,
/// which fixes every derived pattern).
pub fn rap_row_fused_numeric(r: &Csr, a: &Csr, p: &Csr, c: &mut Csr) {
    assert_eq!(r.ncols(), a.nrows());
    assert_eq!(a.ncols(), p.nrows());
    assert_eq!(c.nrows(), r.nrows());
    assert_eq!(c.ncols(), p.ncols());
    if r.nrows() == 0 {
        return;
    }
    let blocks = split_rows_by_nnz(r.rowptr(), num_threads());
    let rowptr = c.rowptr().to_vec();
    let colidx = c.colidx().to_vec();
    let ncols = c.ncols();
    let ptr = ValuesPtr(c.values_mut().as_mut_ptr());
    rayon::scope(|s| {
        for range in &blocks {
            let range = range.clone();
            let (rowptr, colidx, ptr) = (&rowptr, &colidx, &ptr);
            s.spawn(move |_| {
                let mut spa_b = Spa::new(a.ncols());
                let mut marker = vec![usize::MAX; ncols];
                for i in range {
                    // SAFETY: blocks tile the rows disjointly.
                    let (start, end) = unsafe { seed_row(&mut marker, rowptr, colidx, ptr, i) };
                    for (j, rv) in r.row_iter(i) {
                        for (k, av) in a.row_iter(j) {
                            spa_b.add(k, rv * av);
                        }
                    }
                    for (pos, &k) in spa_b.cols().iter().enumerate() {
                        let bv = spa_b.vals()[pos];
                        for (l, pv) in p.row_iter(k) {
                            // SAFETY: seeded above; pattern is frozen.
                            unsafe { add_at(&marker, ptr, start, end, l, bv * pv) };
                        }
                    }
                    spa_b.reset();
                }
            });
        }
    });
}

/// Numeric-only scalar-fused triple product over a frozen
/// [`rap_scalar_fused`] pattern; bitwise identical to re-running the full
/// kernel. Fully branch-free — no intermediate accumulator at all.
pub fn rap_scalar_fused_numeric(r: &Csr, a: &Csr, p: &Csr, c: &mut Csr) {
    assert_eq!(r.ncols(), a.nrows());
    assert_eq!(a.ncols(), p.nrows());
    assert_eq!(c.nrows(), r.nrows());
    assert_eq!(c.ncols(), p.ncols());
    if r.nrows() == 0 {
        return;
    }
    let blocks = split_rows_by_nnz(r.rowptr(), num_threads());
    let rowptr = c.rowptr().to_vec();
    let colidx = c.colidx().to_vec();
    let ncols = c.ncols();
    let ptr = ValuesPtr(c.values_mut().as_mut_ptr());
    rayon::scope(|s| {
        for range in &blocks {
            let range = range.clone();
            let (rowptr, colidx, ptr) = (&rowptr, &colidx, &ptr);
            s.spawn(move |_| {
                let mut marker = vec![usize::MAX; ncols];
                for i in range {
                    // SAFETY: blocks tile the rows disjointly.
                    let (start, end) = unsafe { seed_row(&mut marker, rowptr, colidx, ptr, i) };
                    for (j, rv) in r.row_iter(i) {
                        for (k, av) in a.row_iter(j) {
                            let temp = rv * av;
                            for (l, pv) in p.row_iter(k) {
                                // SAFETY: seeded above; pattern is frozen.
                                unsafe { add_at(&marker, ptr, start, end, l, temp * pv) };
                            }
                        }
                    }
                }
            });
        }
    });
}

/// Numeric-only CF-block triple product over a frozen [`rap_cf`] pattern;
/// bitwise identical to re-running the full kernel. The fine-width
/// intermediate `B_i` keeps its sparse accumulator (its pattern is not
/// part of the frozen artifact); only the coarse output side goes
/// branch-free.
pub fn rap_cf_numeric(
    a_cc: &Csr,
    a_cf: &Csr,
    a_fc: &Csr,
    a_ff: &Csr,
    pf: &Csr,
    pft: &Csr,
    c: &mut Csr,
) {
    let nc = a_cc.nrows();
    let nf = pf.nrows();
    assert_eq!(a_cc.ncols(), nc);
    assert_eq!(pf.ncols(), nc);
    assert_eq!(pft.nrows(), nc);
    assert_eq!(a_ff.nrows(), nf);
    assert_eq!(c.nrows(), nc);
    assert_eq!(c.ncols(), nc);
    if nc == 0 {
        return;
    }
    let blocks = split_rows_by_nnz(pft.rowptr(), num_threads());
    let rowptr = c.rowptr().to_vec();
    let colidx = c.colidx().to_vec();
    let ptr = ValuesPtr(c.values_mut().as_mut_ptr());
    rayon::scope(|s| {
        for range in &blocks {
            let range = range.clone();
            let (rowptr, colidx, ptr) = (&rowptr, &colidx, &ptr);
            s.spawn(move |_| {
                let mut spa_b = Spa::new(nf);
                let mut marker = vec![usize::MAX; nc];
                for i in range {
                    // SAFETY: blocks tile the rows disjointly.
                    let (start, end) = unsafe { seed_row(&mut marker, rowptr, colidx, ptr, i) };
                    for (col, v) in a_cc.row_iter(i) {
                        // SAFETY: seeded above; pattern is frozen.
                        unsafe { add_at(&marker, ptr, start, end, col, v) };
                    }
                    for (k, w) in pft.row_iter(i) {
                        for (col, v) in a_fc.row_iter(k) {
                            // SAFETY: seeded above; pattern is frozen.
                            unsafe { add_at(&marker, ptr, start, end, col, w * v) };
                        }
                        for (col, v) in a_ff.row_iter(k) {
                            spa_b.add(col, w * v);
                        }
                    }
                    for (col, v) in a_cf.row_iter(i) {
                        spa_b.add(col, v);
                    }
                    for (pos, &j) in spa_b.cols().iter().enumerate() {
                        let bv = spa_b.vals()[pos];
                        for (col, pv) in pf.row_iter(j) {
                            // SAFETY: seeded above; pattern is frozen.
                            unsafe { add_at(&marker, ptr, start, end, col, bv * pv) };
                        }
                    }
                    spa_b.reset();
                }
            });
        }
    });
}

/// Numeric-only counterpart of [`rap_cf_from_parts`]: derives the CF
/// blocks and `P_Fᵀ` the same way the full wrapper does, then refreshes
/// `c`'s values over its frozen pattern.
pub fn rap_cf_numeric_from_parts(a_perm: &Csr, nc: usize, pf: &Csr, c: &mut Csr) {
    let (a_cc, a_cf, a_fc, a_ff) = crate::permute::split_cf_blocks(a_perm, nc);
    let pft = crate::transpose::transpose(pf);
    rap_cf_numeric(&a_cc, &a_cf, &a_fc, &a_ff, pf, &pft, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpose::transpose;

    fn random_csr(nrows: usize, ncols: usize, per_row: usize, seed: u64) -> Csr {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut trips = Vec::new();
        for i in 0..nrows {
            trips.push((i, i.min(ncols - 1), 4.0)); // keep a strong diagonal-ish entry
            for _ in 0..per_row {
                let j = next() % ncols;
                trips.push((i, j, (next() % 19) as f64 / 10.0 - 0.9));
            }
        }
        Csr::from_triplets(nrows, ncols, trips)
    }

    #[test]
    fn csr_add_basic() {
        let a = Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)]);
        let b = Csr::from_triplets(2, 2, vec![(0, 0, 3.0), (0, 1, 4.0)]);
        let c = csr_add(2.0, &a, -1.0, &b);
        assert_eq!(c.get(0, 0), Some(-1.0));
        assert_eq!(c.get(0, 1), Some(-4.0));
        assert_eq!(c.get(1, 1), Some(4.0));
    }

    #[test]
    fn fused_variants_match_unfused() {
        let r = random_csr(40, 60, 3, 1);
        let a = random_csr(60, 60, 4, 2);
        let p = random_csr(60, 40, 2, 3);
        let c0 = rap_unfused(&r, &a, &p);
        let c1 = rap_row_fused(&r, &a, &p);
        let c2 = rap_scalar_fused(&r, &a, &p);
        assert!(c0.frob_diff(&c1) < 1e-9);
        assert!(c0.frob_diff(&c2) < 1e-9);
    }

    #[test]
    fn row_fused_matches_unfused_large() {
        let n = 1500;
        let r = random_csr(n / 2, n, 4, 11);
        let a = random_csr(n, n, 5, 12);
        let p = transpose(&r);
        let c0 = rap_unfused(&r, &a, &p);
        let c1 = rap_row_fused(&r, &a, &p);
        assert!(c0.frob_diff(&c1) < 1e-7 * (1.0 + c0.nnz() as f64));
    }

    #[test]
    fn scalar_fusion_does_more_flops() {
        // On any matrix where A rows reached via multiple R entries overlap,
        // scalar fusion multiplies by P rows redundantly.
        let r = random_csr(50, 80, 4, 5);
        let a = random_csr(80, 80, 5, 6);
        let p = random_csr(80, 50, 3, 7);
        let f_row = rap_row_fused_flops(&r, &a, &p);
        let f_scalar = rap_scalar_fused_flops(&r, &a, &p);
        assert!(
            f_scalar.total() > f_row.total(),
            "scalar {} <= row {}",
            f_scalar.total(),
            f_row.total()
        );
    }

    #[test]
    fn flop_counts_exact_on_tiny_example() {
        // Paper's example: non-zeros r11, r12, a11, a21, p11 (1-indexed).
        // Fig 1a: b11 = r11*a11 + r12*a21 (2 muls, 2 adds),
        //         c11 = b11*p11 (1 mul, 1 add) -> 4 "useful" ops beyond
        //         the first-touch; our tally counts mul+add per
        //         accumulation: B gets 2 muls+2 adds, C gets 1 mul+1 add.
        let r = Csr::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]);
        let a = Csr::from_triplets(2, 1, vec![(0, 0, 1.0), (1, 0, 1.0)]);
        let p = Csr::from_triplets(1, 1, vec![(0, 0, 1.0)]);
        let f_row = rap_row_fused_flops(&r, &a, &p);
        assert_eq!(f_row.muls, 3);
        assert_eq!(f_row.adds, 3);
        // Fig 1b: temp1 = r11*a11 (1 mul) + c += temp*p11 (1 mul, 1 add),
        //         temp2 = r12*a21 (1 mul) + c += temp*p11 (1 mul, 1 add)
        let f_scalar = rap_scalar_fused_flops(&r, &a, &p);
        assert_eq!(f_scalar.muls, 4);
        assert_eq!(f_scalar.adds, 2);
    }

    /// Builds a CF-permuted SPD-ish operator and a matching `P = [I; P_F]`.
    fn cf_fixture(nc: usize, nf: usize, seed: u64) -> (Csr, Csr) {
        let n = nc + nf;
        let a = {
            let base = random_csr(n, n, 3, seed);
            // Symmetrize so the CF identity (which holds for any A) is
            // exercised on a realistic operator.
            csr_add(0.5, &base, 0.5, &transpose(&base))
        };
        let pf = random_csr(nf, nc, 2, seed + 100);
        (a, pf)
    }

    #[test]
    fn cf_rap_matches_general_rap() {
        let (nc, nf) = (30, 45);
        let (a, pf) = cf_fixture(nc, nf, 17);
        // Build the full P = [I; P_F] explicitly.
        let mut trips: Vec<(usize, usize, f64)> = (0..nc).map(|i| (i, i, 1.0)).collect();
        for i in 0..nf {
            for (c, v) in pf.row_iter(i) {
                trips.push((nc + i, c, v));
            }
        }
        let p = Csr::from_triplets(nc + nf, nc, trips);
        let r = transpose(&p);
        let general = rap_row_fused(&r, &a, &p);
        let cf = rap_cf_from_parts(&a, nc, &pf);
        assert!(general.frob_diff(&cf) < 1e-9);
    }

    #[test]
    fn cf_rap_pure_coarse_is_acc() {
        // With no fine points P = I and RAP = A.
        let a = random_csr(10, 10, 3, 33);
        let pf = Csr::zero(0, 10);
        let c = rap_cf_from_parts(&a, 10, &pf);
        assert!(a.frob_diff(&c) < 1e-12);
    }

    #[test]
    fn rap_empty_inputs() {
        let r = Csr::zero(0, 5);
        let a = random_csr(5, 5, 2, 41);
        let p = Csr::zero(5, 0);
        let c = rap_row_fused(&r, &a, &p);
        assert_eq!(c.nrows(), 0);
        assert_eq!(c.ncols(), 0);
    }

    /// Same-pattern value perturbation (keeps every entry nonzero so the
    /// product pattern cannot drift).
    fn perturb(m: &Csr, seed: u64) -> Csr {
        let mut out = m.clone();
        let mut state = seed | 1;
        for v in out.values_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let eps = ((state >> 33) % 1000) as f64 / 1e6;
            *v *= 1.0 + eps;
        }
        out
    }

    #[test]
    fn row_fused_numeric_bitwise_matches_full() {
        let r = random_csr(40, 60, 3, 51);
        let a = random_csr(60, 60, 4, 52);
        let p = random_csr(60, 40, 2, 53);
        let mut c = rap_row_fused(&r, &a, &p);
        let (r2, a2, p2) = (perturb(&r, 61), perturb(&a, 62), perturb(&p, 63));
        rap_row_fused_numeric(&r2, &a2, &p2, &mut c);
        let full = rap_row_fused(&r2, &a2, &p2);
        assert_eq!(c, full); // identical pattern AND bitwise values
    }

    #[test]
    fn scalar_fused_numeric_bitwise_matches_full() {
        let r = random_csr(35, 50, 3, 71);
        let a = random_csr(50, 50, 4, 72);
        let p = random_csr(50, 35, 2, 73);
        let mut c = rap_scalar_fused(&r, &a, &p);
        let (r2, a2, p2) = (perturb(&r, 81), perturb(&a, 82), perturb(&p, 83));
        rap_scalar_fused_numeric(&r2, &a2, &p2, &mut c);
        assert_eq!(c, rap_scalar_fused(&r2, &a2, &p2));
    }

    #[test]
    fn cf_numeric_bitwise_matches_full() {
        let (nc, nf) = (30, 45);
        let (a, pf) = cf_fixture(nc, nf, 91);
        let mut c = rap_cf_from_parts(&a, nc, &pf);
        let (a2, pf2) = (perturb(&a, 92), perturb(&pf, 93));
        rap_cf_numeric_from_parts(&a2, nc, &pf2, &mut c);
        assert_eq!(c, rap_cf_from_parts(&a2, nc, &pf2));
    }

    #[test]
    fn numeric_rap_empty_rows() {
        // R with empty rows (and A with an empty row) -> empty output rows
        // the numeric kernels must seed and skip without touching memory
        // out of range.
        let r = Csr::from_triplets(4, 3, vec![(1, 0, 2.0), (3, 2, 1.0)]);
        let a = Csr::from_triplets(3, 3, vec![(0, 1, 1.5), (2, 2, -1.0)]);
        let p = Csr::from_triplets(3, 2, vec![(1, 0, 0.5), (2, 1, 2.0)]);
        let mut c = rap_row_fused(&r, &a, &p);
        assert_eq!(c.row_nnz(0), 0);
        rap_row_fused_numeric(&r, &a, &p, &mut c);
        assert_eq!(c, rap_row_fused(&r, &a, &p));
        let mut cs = rap_scalar_fused(&r, &a, &p);
        rap_scalar_fused_numeric(&r, &a, &p, &mut cs);
        assert_eq!(cs, rap_scalar_fused(&r, &a, &p));
    }

    #[test]
    fn numeric_rap_zero_fill_entries() {
        // Exactly cancelling contributions leave explicit 0.0 entries in
        // the pattern; the numeric refresh must reproduce them (and give
        // them new nonzero values once the cancellation breaks).
        let r = Csr::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, -1.0)]);
        let a = Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 0, 1.0)]);
        let p = Csr::from_triplets(2, 1, vec![(0, 0, 1.0)]);
        let mut c = rap_row_fused(&r, &a, &p);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.values(), [0.0]); // cancelled, structurally present
        let r2 = Csr::from_triplets(1, 2, vec![(0, 0, 2.0), (0, 1, -1.0)]);
        rap_row_fused_numeric(&r2, &a, &p, &mut c);
        assert_eq!(c.values(), [1.0]);
    }

    #[test]
    fn numeric_rap_one_by_one_coarse_level() {
        // 1x1 coarse operator: single coarse point, everything folds into
        // one output entry.
        let (a, pf) = cf_fixture(1, 6, 111);
        let mut c = rap_cf_from_parts(&a, 1, &pf);
        assert_eq!(c.nrows(), 1);
        let (a2, pf2) = (perturb(&a, 112), perturb(&pf, 113));
        rap_cf_numeric_from_parts(&a2, 1, &pf2, &mut c);
        assert_eq!(c, rap_cf_from_parts(&a2, 1, &pf2));
        // Full-matrix R/A/P analogue.
        let p = Csr::from_triplets(3, 1, vec![(0, 0, 1.0), (1, 0, 0.5), (2, 0, 0.25)]);
        let r = transpose(&p);
        let a3 = random_csr(3, 3, 2, 114);
        let mut c3 = rap_row_fused(&r, &a3, &p);
        rap_row_fused_numeric(&r, &perturb(&a3, 115), &p, &mut c3);
        assert_eq!(c3, rap_row_fused(&r, &perturb(&a3, 115), &p));
    }

    #[test]
    fn numeric_cf_pure_coarse() {
        // No fine points: P = I, RAP = A; the numeric path must still
        // seed rows correctly with empty fine blocks.
        let a = random_csr(10, 10, 3, 121);
        let pf = Csr::zero(0, 10);
        let mut c = rap_cf_from_parts(&a, 10, &pf);
        let a2 = perturb(&a, 122);
        rap_cf_numeric_from_parts(&a2, 10, &pf, &mut c);
        assert_eq!(c, rap_cf_from_parts(&a2, 10, &pf));
    }
}

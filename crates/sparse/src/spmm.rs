//! Sparse matrix × block-vector products (SpMM) for the batched solve path.
//!
//! Each kernel here is the k-wide twin of a kernel in [`crate::spmv`]: one
//! traversal of the matrix row advances all `k` columns of a [`MultiVec`],
//! so the CSR index/value streams — the bandwidth cost of an SpMV — are
//! read once instead of `k` times. The inner lane loops are monomorphized
//! over k ∈ {1, 2, 4, 8} (fixed-width accumulator arrays the compiler
//! keeps in registers), realizing the paper's 8×-unroll idea (§3.1.1) with
//! genuine data-parallel work per stored entry rather than speculative
//! partial sums.
//!
//! Determinism contract: for every kernel, column `j` of the result is
//! bitwise identical to the corresponding single-vector kernel applied to
//! the extracted column — per-row accumulation walks stored entries in the
//! same ascending order, the fused norms use the same 4096-row chunking
//! and the same linear chunk-order fold.

use crate::csr::Csr;
use crate::multivec::{lanes, MultiVec};
use rayon::prelude::*;

/// Minimum rows before a kernel goes parallel (same as `spmv`).
const PAR_THRESHOLD: usize = 512;

/// Row-chunk length for the fused deterministic reductions (same as
/// `spmv_dot` / `residual_norm_sq`).
const CHUNK: usize = 4096;

/// `out[j] = Σ_c a[i,c] * x[c,j]`, walking row `i`'s stored entries in
/// ascending order — per column, the identical add sequence to
/// `spmv::row_dot` on the extracted column. `K == 0` selects the
/// dynamic-width fallback.
#[inline]
fn row_dots<const K: usize>(a: &Csr, i: usize, xd: &[f64], k: usize, out: &mut [f64]) {
    if K != 0 {
        debug_assert_eq!(K, k);
        let mut acc = [0.0f64; 8];
        for (c, v) in a.row_iter(i) {
            let b = c * K;
            for j in 0..K {
                acc[j] += v * xd[b + j];
            }
        }
        out[..K].copy_from_slice(&acc[..K]);
    } else {
        out.fill(0.0);
        for (c, v) in a.row_iter(i) {
            let b = c * k;
            for (j, oj) in out.iter_mut().enumerate() {
                *oj += v * xd[b + j];
            }
        }
    }
}

fn check_dims(a: &Csr, x: &MultiVec, y: &MultiVec) {
    assert_eq!(x.n(), a.ncols()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(y.n(), a.nrows()); // PANIC-FREE: see above.
    assert_eq!(x.k(), y.k()); // PANIC-FREE: see above.
}

/// `Y = A * X` over interleaved block vectors.
pub fn spmm(a: &Csr, x: &MultiVec, y: &mut MultiVec) {
    check_dims(a, x, y);
    let k = x.k();
    spmm_rows(a, x.data(), k, y.data_mut());
}

/// `Y = A * X` on raw interleaved slices (`k` lanes per row); used by the
/// identity-block variants to address sub-blocks of a fine-level vector.
pub fn spmm_rows(a: &Csr, xd: &[f64], k: usize, yd: &mut [f64]) {
    assert_eq!(xd.len(), a.ncols() * k); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(yd.len(), a.nrows() * k); // PANIC-FREE: see above.
    if k == 0 {
        return;
    }
    if a.nrows() < PAR_THRESHOLD {
        for (i, yr) in yd.chunks_exact_mut(k).enumerate() {
            lanes!(k, row_dots(a, i, xd, k, yr));
        }
    } else {
        yd.par_chunks_mut(k)
            .enumerate()
            .with_min_len(512)
            .for_each(|(i, yr)| lanes!(k, row_dots(a, i, xd, k, yr)));
    }
}

/// `Y = alpha * A * X + beta * Y` over interleaved block vectors.
pub fn spmm_axpby(a: &Csr, alpha: f64, x: &MultiVec, beta: f64, y: &mut MultiVec) {
    check_dims(a, x, y);
    let k = x.k();
    spmm_axpby_rows(a, alpha, x.data(), beta, k, y.data_mut());
}

/// `spmm_axpby` on raw interleaved slices.
pub fn spmm_axpby_rows(a: &Csr, alpha: f64, xd: &[f64], beta: f64, k: usize, yd: &mut [f64]) {
    assert_eq!(xd.len(), a.ncols() * k); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(yd.len(), a.nrows() * k); // PANIC-FREE: see above.
    if k == 0 {
        return;
    }
    let body = |i: usize, yr: &mut [f64]| {
        if k <= 8 {
            // Row dots land in a fixed stack array, then combine with the
            // prior y values lane-wise.
            let mut v = [0.0f64; 8];
            lanes!(k, row_dots(a, i, xd, k, &mut v[..k]));
            for (j, yj) in yr.iter_mut().enumerate() {
                *yj = alpha * v[j] + beta * *yj;
            }
        } else {
            // Wide fallback: per-column traversal keeps the same ascending
            // per-entry order without heap scratch (k > 8 is outside the
            // monomorphized set and off the hot path).
            for (j, yj) in yr.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (c, w) in a.row_iter(i) {
                    acc += w * xd[c * k + j];
                }
                *yj = alpha * acc + beta * *yj;
            }
        }
    };
    if a.nrows() < PAR_THRESHOLD {
        for (i, yr) in yd.chunks_exact_mut(k).enumerate() {
            body(i, yr);
        }
    } else {
        yd.par_chunks_mut(k)
            .enumerate()
            .with_min_len(512)
            .for_each(|(i, yr)| body(i, yr));
    }
}

/// Fused residual `R = B - A*X` with per-column `||r_j||²` returned in one
/// sweep — the k-wide twin of `spmv::residual_norm_sq`. `norms_sq` must
/// have length `k`; column `j` of both the residual and the norm is
/// bitwise identical to the single-vector kernel on the extracted column
/// (same row chunking, same chunk-order fold).
pub fn spmm_dots(a: &Csr, x: &MultiVec, b: &MultiVec, r: &mut MultiVec, norms_sq: &mut [f64]) {
    check_dims(a, x, r);
    assert_eq!(b.n(), a.nrows()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(b.k(), x.k()); // PANIC-FREE: see above.
    assert_eq!(norms_sq.len(), x.k()); // PANIC-FREE: see above.
    let k = x.k();
    norms_sq.fill(0.0);
    if k == 0 {
        return;
    }
    let n = a.nrows();
    let (xd, bd) = (x.data(), b.data());
    let rd = r.data_mut();
    // The residual row doubles as the row-dot scratch, so any width works
    // without per-row heap allocation.
    let row_body = |i: usize, rr: &mut [f64], acc: &mut [f64]| {
        lanes!(k, row_dots(a, i, xd, k, rr));
        for (j, rj) in rr.iter_mut().enumerate() {
            let rv = bd[i * k + j] - *rj;
            *rj = rv;
            acc[j] += rv * rv;
        }
    };
    if n < PAR_THRESHOLD {
        for (i, rr) in rd.chunks_exact_mut(k).enumerate() {
            row_body(i, rr, norms_sq);
        }
        return;
    }
    let partials: Vec<Vec<f64>> = rd
        .par_chunks_mut(CHUNK * k)
        .enumerate()
        .map(|(ci, rc)| {
            let base = ci * CHUNK;
            let mut acc = vec![0.0f64; k]; // ALLOC: k-sized lane accumulator per chunk, not O(n)
            for (o, rr) in rc.chunks_exact_mut(k).enumerate() {
                row_body(base + o, rr, &mut acc);
            }
            acc
        })
        .collect(); // ALLOC: per-chunk partials for the ordered combine
    for p in partials {
        for (o, pj) in norms_sq.iter_mut().zip(&p) {
            *o += pj;
        }
    }
}

/// Prolongation with a CF-permuted `P = [I; P_F]`, k-wide:
/// `XF[0..nc] = XC` (identity block) and `XF[nc..] = P_F * XC`.
pub fn interp_apply_multi(pf: &Csr, nc: usize, xc: &MultiVec, xf: &mut MultiVec) {
    let k = xc.k();
    assert_eq!(xc.n(), nc);
    assert_eq!(pf.ncols(), nc);
    assert_eq!(xf.n(), nc + pf.nrows());
    assert_eq!(xf.k(), k);
    let xfd = xf.data_mut();
    xfd[..nc * k].copy_from_slice(xc.data());
    let (_, fine) = xfd.split_at_mut(nc * k);
    spmm_rows(pf, xc.data(), k, fine);
}

/// Prolongation-and-correct, k-wide: `XF += [I; P_F] * XC`.
pub fn interp_apply_add_multi(pf: &Csr, nc: usize, xc: &MultiVec, xf: &mut MultiVec) {
    let k = xc.k();
    assert_eq!(xc.n(), nc); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(pf.ncols(), nc); // PANIC-FREE: see above.
    assert_eq!(xf.n(), nc + pf.nrows()); // PANIC-FREE: see above.
    assert_eq!(xf.k(), k); // PANIC-FREE: see above.
    let xfd = xf.data_mut();
    for (o, c) in xfd[..nc * k].iter_mut().zip(xc.data()) {
        *o += c;
    }
    let (_, fine) = xfd.split_at_mut(nc * k);
    spmm_axpby_rows(pf, 1.0, xc.data(), 1.0, k, fine);
}

/// Restriction with a CF-permuted `R = [I  P_Fᵀ]`, k-wide:
/// `XC = XF[0..nc] + P_Fᵀ * XF[nc..]`.
pub fn restrict_apply_multi(rf: &Csr, nc: usize, xf: &MultiVec, xc: &mut MultiVec) {
    let k = xf.k();
    assert_eq!(rf.nrows(), nc); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(xf.n(), nc + rf.ncols()); // PANIC-FREE: see above.
    assert_eq!(xc.n(), nc); // PANIC-FREE: see above.
    assert_eq!(xc.k(), k); // PANIC-FREE: see above.
    xc.data_mut().copy_from_slice(&xf.data()[..nc * k]);
    let fine = &xf.data()[nc * k..];
    spmm_axpby_rows(rf, 1.0, fine, 1.0, k, xc.data_mut());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv;

    fn random_csr(nrows: usize, ncols: usize, seed: u64) -> Csr {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut trips = Vec::new();
        for i in 0..nrows {
            for _ in 0..4 {
                let j = (next() as usize) % ncols;
                let v = ((next() % 100) as f64 - 50.0) / 10.0;
                trips.push((i, j, v));
            }
        }
        Csr::from_triplets(nrows, ncols, trips)
    }

    fn wave(n: usize, seed: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 31 + seed * 7) % 23) as f64 * 0.125 - 1.0)
            .collect()
    }

    #[test]
    fn spmm_bitwise_matches_solo_spmv_per_column() {
        // Below and above PAR_THRESHOLD; monomorphized and dynamic widths.
        for (n, k) in [(60, 4), (2000, 8), (2000, 3), (700, 1)] {
            let a = random_csr(n, n, 11);
            let cols: Vec<Vec<f64>> = (0..k).map(|j| wave(n, j)).collect();
            let x = MultiVec::from_columns(&cols);
            let mut y = MultiVec::new(n, k);
            spmm(&a, &x, &mut y);
            for (j, col) in cols.iter().enumerate() {
                let mut solo = vec![0.0; n];
                spmv::spmv(&a, col, &mut solo);
                assert_eq!(y.col(j), solo, "n={n} k={k} col {j}");
            }
        }
    }

    #[test]
    fn spmm_axpby_bitwise_matches_solo() {
        for (n, k) in [(50, 2), (1800, 4), (900, 5)] {
            let a = random_csr(n, n, 5);
            let xc: Vec<Vec<f64>> = (0..k).map(|j| wave(n, j)).collect();
            let yc: Vec<Vec<f64>> = (0..k).map(|j| wave(n, j + k)).collect();
            let x = MultiVec::from_columns(&xc);
            let mut y = MultiVec::from_columns(&yc);
            spmm_axpby(&a, 1.5, &x, -0.5, &mut y);
            for j in 0..k {
                let mut solo = yc[j].clone();
                spmv::spmv_axpby(&a, 1.5, &xc[j], -0.5, &mut solo);
                assert_eq!(y.col(j), solo, "n={n} k={k} col {j}");
            }
        }
    }

    #[test]
    fn spmm_dots_bitwise_matches_residual_norm_sq() {
        for (n, k) in [(100, 4), (5000, 8), (5000, 3)] {
            let a = random_csr(n, n, 23);
            let xc: Vec<Vec<f64>> = (0..k).map(|j| wave(n, j)).collect();
            let bc: Vec<Vec<f64>> = (0..k).map(|j| wave(n, j + 17)).collect();
            let x = MultiVec::from_columns(&xc);
            let b = MultiVec::from_columns(&bc);
            let mut r = MultiVec::new(n, k);
            let mut norms = vec![0.0; k];
            spmm_dots(&a, &x, &b, &mut r, &mut norms);
            for j in 0..k {
                let mut rs = vec![0.0; n];
                let solo = spmv::residual_norm_sq(&a, &xc[j], &bc[j], &mut rs);
                assert_eq!(r.col(j), rs, "residual n={n} k={k} col {j}");
                assert_eq!(
                    norms[j].to_bits(),
                    solo.to_bits(),
                    "norm n={n} k={k} col {j}"
                );
            }
        }
    }

    #[test]
    fn identity_block_variants_bitwise_match_solo() {
        let nc = 400;
        let nf = 700;
        let k = 4;
        let pf = random_csr(nf, nc, 3);
        let rf = crate::transpose::transpose(&pf);
        let xcc: Vec<Vec<f64>> = (0..k).map(|j| wave(nc, j)).collect();
        let xfc: Vec<Vec<f64>> = (0..k).map(|j| wave(nc + nf, j + 9)).collect();
        let xc = MultiVec::from_columns(&xcc);

        let mut xf = MultiVec::new(nc + nf, k);
        interp_apply_multi(&pf, nc, &xc, &mut xf);
        for j in 0..k {
            let mut solo = vec![0.0; nc + nf];
            spmv::interp_apply(&pf, nc, &xcc[j], &mut solo);
            assert_eq!(xf.col(j), solo, "interp col {j}");
        }

        let mut xf2 = MultiVec::from_columns(&xfc);
        interp_apply_add_multi(&pf, nc, &xc, &mut xf2);
        for j in 0..k {
            let mut solo = xfc[j].clone();
            spmv::interp_apply_add(&pf, nc, &xcc[j], &mut solo);
            assert_eq!(xf2.col(j), solo, "interp_add col {j}");
        }

        let xfv = MultiVec::from_columns(&xfc);
        let mut out = MultiVec::new(nc, k);
        restrict_apply_multi(&rf, nc, &xfv, &mut out);
        for j in 0..k {
            let mut solo = vec![0.0; nc];
            spmv::restrict_apply(&rf, nc, &xfc[j], &mut solo);
            assert_eq!(out.col(j), solo, "restrict col {j}");
        }
    }
}

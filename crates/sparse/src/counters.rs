//! Operation counters used to reproduce the paper's analytic claims
//! (e.g. §3.1.1: row-fused RAP performs 1.73× fewer floating-point
//! operations than HYPRE's scalar fusion on the finest level).
//!
//! Counting is kept out of the hot kernels: counting variants of the triple
//! products walk the same loop structure but only tally, so production
//! kernels pay no overhead.

use std::sync::atomic::{AtomicU64, Ordering};

/// Tally of floating-point multiply and add operations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlopCount {
    /// Multiplications performed.
    pub muls: u64,
    /// Additions performed.
    pub adds: u64,
}

impl FlopCount {
    /// Total flops (muls + adds).
    pub fn total(&self) -> u64 {
        self.muls + self.adds
    }
}

impl std::ops::Add for FlopCount {
    type Output = FlopCount;
    fn add(self, rhs: FlopCount) -> FlopCount {
        FlopCount {
            muls: self.muls + rhs.muls,
            adds: self.adds + rhs.adds,
        }
    }
}

impl std::ops::AddAssign for FlopCount {
    fn add_assign(&mut self, rhs: FlopCount) {
        *self = *self + rhs;
    }
}

/// Analytic flop costs for the solve-phase kernels, used to attach
/// `"flops"` counter deltas to profiler spans without instrumenting the
/// hot loops themselves. These are the standard sparse-kernel operation
/// counts (one multiply + one add per stored entry, etc.), so a span's
/// flop tally is exact for the work the kernel was asked to do rather
/// than a sampled estimate.
pub mod flops {
    /// `y = A x`: one multiply-add per stored entry.
    pub fn spmv(nnz: usize) -> u64 {
        2 * nnz as u64
    }

    /// One Gauss-Seidel (or Jacobi) sweep: a multiply-add per stored
    /// off-diagonal entry plus the diagonal solve per row, ≈ `2·nnz`.
    pub fn gs_sweep(nnz: usize) -> u64 {
        2 * nnz as u64
    }

    /// Dot product or squared norm of length-`n` vectors.
    pub fn dot(n: usize) -> u64 {
        2 * n as u64
    }

    /// `y += alpha x` over length-`n` vectors.
    pub fn axpy(n: usize) -> u64 {
        2 * n as u64
    }

    /// Dense triangular solves of an `m × m` LU factorization.
    pub fn lu_solve(m: usize) -> u64 {
        2 * (m as u64) * (m as u64)
    }

    /// `Y = A X` over `k` interleaved columns: one multiply-add per stored
    /// entry *per lane* — the batched kernels do `k×` the arithmetic of a
    /// single SpMV while reading the matrix once.
    pub fn spmm(nnz: usize, k: usize) -> u64 {
        2 * nnz as u64 * k as u64
    }

    /// One k-wide Gauss-Seidel (or Jacobi) sweep: `k×` the scalar sweep.
    pub fn gs_sweep_batch(nnz: usize, k: usize) -> u64 {
        2 * nnz as u64 * k as u64
    }

    /// Per-column dot products (or squared norms) over `k` length-`n`
    /// columns.
    pub fn dot_batch(n: usize, k: usize) -> u64 {
        2 * n as u64 * k as u64
    }

    /// Per-column `y += alpha_j x` over `k` length-`n` columns.
    pub fn axpy_batch(n: usize, k: usize) -> u64 {
        2 * n as u64 * k as u64
    }
}

/// Thread-safe byte counter used by the simulated message-passing transport
/// to reproduce the paper's communication-volume measurements (§4.3, §5.4).
#[derive(Debug, Default)]
pub struct ByteCounter {
    bytes: AtomicU64,
    messages: AtomicU64,
}

impl ByteCounter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `n` bytes.
    pub fn record(&self, n: usize) {
        // ORDERING: Relaxed — statistics counters publish nothing; the RMW's
        // atomicity keeps tallies exact, and readers only consume them after
        // the parallel region has been joined (which orders everything).
        self.bytes.fetch_add(n as u64, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        // ORDERING: Relaxed — read after the recording region is joined;
        // the join provides the happens-before edge, not this load.
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        // ORDERING: Relaxed — as for `bytes`, the caller's join orders it.
        self.messages.load(Ordering::Relaxed)
    }

    /// Resets both tallies to zero.
    pub fn reset(&self) {
        // ORDERING: Relaxed — reset happens between measurement phases with
        // no concurrent recorders; atomicity alone suffices.
        self.bytes.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_count_arithmetic() {
        let a = FlopCount { muls: 3, adds: 2 };
        let b = FlopCount { muls: 1, adds: 1 };
        let c = a + b;
        assert_eq!(c.muls, 4);
        assert_eq!(c.adds, 3);
        assert_eq!(c.total(), 7);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn byte_counter_accumulates() {
        let c = ByteCounter::new();
        c.record(100);
        c.record(28);
        assert_eq!(c.bytes(), 128);
        assert_eq!(c.messages(), 2);
        c.reset();
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.messages(), 0);
    }

    #[test]
    fn byte_counter_threaded() {
        let c = ByteCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.record(8);
                    }
                });
            }
        });
        assert_eq!(c.bytes(), 32000);
        assert_eq!(c.messages(), 4000);
    }
}

//! Small dense matrices with LU factorization.
//!
//! AMG's coarsest level is solved directly; HYPRE uses a dense Gaussian
//! elimination once the grid is small enough. This module provides a
//! row-major dense matrix with partially pivoted LU, plus helpers used as
//! test oracles for the sparse kernels.

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Builds from a row-major slice.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        DenseMatrix { nrows, ncols, data }
    }

    /// Builds from a sparse matrix.
    pub fn from_csr(a: &crate::csr::Csr) -> Self {
        DenseMatrix {
            nrows: a.nrows(),
            ncols: a.ncols(),
            data: a.to_dense(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.ncols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.ncols + j] = v;
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// `y = self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        (0..self.nrows)
            .map(|i| (0..self.ncols).map(|j| self.get(i, j) * x[j]).sum())
            .collect()
    }
}

/// LU factorization with partial pivoting of a square dense matrix.
#[derive(Debug, Clone)]
pub struct LuFactor {
    n: usize,
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Vec<f64>,
    /// Row pivot sequence: step k swapped rows k and piv[k].
    piv: Vec<usize>,
}

impl LuFactor {
    /// Factors `a`; returns `None` when the matrix is numerically singular.
    pub fn new(a: &DenseMatrix) -> Option<Self> {
        assert_eq!(a.nrows, a.ncols, "LU requires a square matrix");
        let n = a.nrows;
        let mut lu = a.data.clone();
        let mut piv = vec![0usize; n];
        for k in 0..n {
            // Partial pivot: largest |entry| in column k at/below row k.
            let mut p = k;
            let mut best = lu[k * n + k].abs();
            for i in k + 1..n {
                let v = lu[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 {
                return None;
            }
            piv[k] = p;
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
            }
            let pivot = lu[k * n + k];
            for i in k + 1..n {
                let m = lu[i * n + k] / pivot;
                lu[i * n + k] = m;
                for j in k + 1..n {
                    lu[i * n + j] -= m * lu[k * n + j];
                }
            }
        }
        Some(LuFactor { n, lu, piv })
    }

    /// Solves `A x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n); // PANIC-FREE: coarse RHS length is fixed by the hierarchy at setup.
        let n = self.n;
        let mut x = b.to_vec(); // ALLOC: O(n_coarse) solution copy; the coarsest grid is tiny by construction.
                                // Apply row pivots.
        for k in 0..n {
            x.swap(k, self.piv[k]);
        }
        // Forward substitution (unit lower triangular).
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solves_small_system() {
        // [4 3; 6 3] x = [10; 12] -> x = [1, 2]
        let a = DenseMatrix::from_row_major(2, 2, vec![4.0, 3.0, 6.0, 3.0]);
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[10.0, 12.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero on the first diagonal position forces a pivot swap.
        let a = DenseMatrix::from_row_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(LuFactor::new(&a).is_none());
    }

    #[test]
    fn lu_random_spd_residual() {
        // Diagonally dominant 8x8 — well conditioned.
        let n = 8;
        let mut a = DenseMatrix::zeros(n, n);
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 100) as f64 / 100.0
        };
        for i in 0..n {
            let mut rowsum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = next() - 0.5;
                    a.set(i, j, v);
                    rowsum += v.abs();
                }
            }
            a.set(i, i, rowsum + 1.0);
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&b);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn from_csr_matches_to_dense() {
        let s = crate::csr::Csr::from_triplets(2, 3, vec![(0, 1, 2.0), (1, 2, -1.0)]);
        let d = DenseMatrix::from_csr(&s);
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(1, 2), -1.0);
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(d.matvec(&[1.0, 1.0, 1.0]), vec![2.0, -1.0]);
    }
}

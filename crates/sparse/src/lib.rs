//! # famg-sparse
//!
//! Sparse-matrix kernels underlying the `famg` algebraic-multigrid solver.
//!
//! This crate provides the computational substrate described in §3 of
//! Park et al., *"High-Performance Algebraic Multigrid Solver Optimized for
//! Multi-Core Based Distributed Parallel Systems"* (SC '15):
//!
//! * [`Csr`] — compressed sparse row storage with validation and
//!   conversion utilities,
//! * [`spmv`] — sparse matrix–vector products, including the fused
//!   SpMV + inner-product kernel and identity-block-skipping products for
//!   CF-permuted interpolation operators,
//! * [`multivec`] / [`spmm`] — the batched multi-RHS substrate: a strided
//!   row-major [`MultiVec`] block vector, k-wide SpMM twins of every
//!   solve-phase SpMV kernel, and per-column deterministic vector
//!   reductions (column `j` is bitwise identical to the single-vector
//!   kernel on the extracted column),
//! * [`spgemm`] — Gustavson sparse matrix–matrix multiplication in three
//!   flavours: the classic two-pass (symbolic + numeric) baseline, the
//!   paper's one-pass variant with per-thread pre-allocated output chunks,
//!   and a numeric-only re-run over a frozen symbolic pattern (the paper's
//!   branch-overhead upper bound),
//! * [`triple`] — Galerkin `R·A·P` triple products: unfused, row-fused
//!   (Fig. 1a), scalar-fused (Fig. 1b, the HYPRE baseline), and the
//!   CF-block decomposition that exploits the identity block of `P`,
//! * [`transpose`] — sequential and parallel (counting-sort) transposes,
//! * [`permute`] — symmetric permutations and CF reorderings,
//! * [`spa`] — the marker-array sparse accumulator idiom,
//! * [`vecops`] — level-1 vector kernels (dot, axpy, norms) with
//!   sequential and rayon-parallel versions,
//! * [`dense`] — a small dense matrix with LU factorization used for the
//!   coarsest-grid direct solve and as a test oracle,
//! * [`partition`] — nnz-balanced row partitioning and prefix sums used
//!   by every parallel kernel.
//!
//! All kernels are deterministic: parallel results are bitwise equal to
//! sequential ones wherever the algorithm permits (reductions that
//! reassociate floating-point additions are documented on each function).

// Kernels index several parallel arrays in lockstep; indexed loops are
// the clearest expression of that and match the reference implementations.
#![allow(clippy::needless_range_loop)]
pub mod counters;
pub mod csr;
pub mod dense;
pub mod multivec;
pub mod partition;
pub mod permute;
pub mod spa;
pub mod spgemm;
pub mod spmm;
pub mod spmv;
pub mod traffic;
pub mod transpose;
pub mod triple;
pub mod util;
pub mod vecops;

pub use csr::Csr;
pub use dense::DenseMatrix;
pub use multivec::MultiVec;

//! General matrix utilities rounding out the public API: norms, row
//! statistics, diagonal scaling, and submatrix extraction.

use crate::csr::Csr;

/// Row sums of a matrix.
pub fn row_sums(a: &Csr) -> Vec<f64> {
    (0..a.nrows()).map(|i| a.row_vals(i).iter().sum()).collect()
}

/// Infinity norm (max absolute row sum).
pub fn norm_inf(a: &Csr) -> f64 {
    (0..a.nrows())
        .map(|i| a.row_vals(i).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0f64, f64::max)
}

/// Frobenius norm.
pub fn norm_frobenius(a: &Csr) -> f64 {
    a.values().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Symmetric diagonal (Jacobi) scaling: returns `D^{-1/2} A D^{-1/2}`
/// and the scaling vector `d^{-1/2}` so solutions can be mapped back
/// (`x = D^{-1/2} x̂`). Requires a positive diagonal.
pub fn jacobi_scale(a: &Csr) -> (Csr, Vec<f64>) {
    assert_eq!(a.nrows(), a.ncols());
    let dinv_sqrt: Vec<f64> = (0..a.nrows())
        .map(|i| {
            let d = a.diag(i);
            assert!(d > 0.0, "jacobi_scale needs a positive diagonal (row {i})");
            1.0 / d.sqrt()
        })
        .collect();
    let mut vals = Vec::with_capacity(a.nnz());
    for i in 0..a.nrows() {
        let si = dinv_sqrt[i];
        for (c, v) in a.row_iter(i) {
            vals.push(si * v * dinv_sqrt[c]);
        }
    }
    (
        Csr::from_parts_unchecked(
            a.nrows(),
            a.ncols(),
            a.rowptr().to_vec(),
            a.colidx().to_vec(),
            vals,
        ),
        dinv_sqrt,
    )
}

/// Extracts the submatrix with the given (sorted, unique) row and column
/// index sets, renumbering into the compact spaces.
pub fn extract_submatrix(a: &Csr, rows: &[usize], cols: &[usize]) -> Csr {
    debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
    let mut rowptr = Vec::with_capacity(rows.len() + 1);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    rowptr.push(0);
    for &r in rows {
        for (c, v) in a.row_iter(r) {
            if let Ok(k) = cols.binary_search(&c) {
                colidx.push(k);
                values.push(v);
            }
        }
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(rows.len(), cols.len(), rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_triplets(
            3,
            3,
            vec![
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 1, 4.0),
                (2, 0, 1.0),
                (2, 2, 8.0),
            ],
        )
    }

    #[test]
    fn norms_and_sums() {
        let a = sample();
        assert_eq!(row_sums(&a), vec![1.0, 4.0, 9.0]);
        assert_eq!(norm_inf(&a), 9.0);
        let fro = (4.0f64 + 1.0 + 16.0 + 1.0 + 64.0).sqrt();
        assert!((norm_frobenius(&a) - fro).abs() < 1e-14);
    }

    #[test]
    fn jacobi_scaling_normalizes_diagonal() {
        let a = sample();
        let (scaled, _d) = jacobi_scale(&a);
        for i in 0..3 {
            assert!((scaled.diag(i) - 1.0).abs() < 1e-14, "row {i}");
        }
        // Symmetric scaling of a symmetric matrix stays symmetric.
        let s = Csr::from_triplets(
            2,
            2,
            vec![(0, 0, 4.0), (0, 1, -2.0), (1, 0, -2.0), (1, 1, 16.0)],
        );
        let (ss, _) = jacobi_scale(&s);
        assert!(ss.is_symmetric(1e-14));
        assert!((ss.get(0, 1).unwrap() + 0.25).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "positive diagonal")]
    fn jacobi_scale_rejects_nonpositive() {
        let a = Csr::from_triplets(1, 1, vec![(0, 0, -1.0)]);
        jacobi_scale(&a);
    }

    #[test]
    fn submatrix_extraction() {
        let a = sample();
        let sub = extract_submatrix(&a, &[0, 2], &[0, 2]);
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.get(0, 0), Some(2.0));
        assert_eq!(sub.get(0, 1), None); // (0,1) of A was column 1, excluded
        assert_eq!(sub.get(1, 0), Some(1.0));
        assert_eq!(sub.get(1, 1), Some(8.0));
    }

    #[test]
    fn empty_submatrix() {
        let a = sample();
        let sub = extract_submatrix(&a, &[], &[0, 1, 2]);
        assert_eq!(sub.nrows(), 0);
        let sub2 = extract_submatrix(&a, &[1], &[]);
        assert_eq!(sub2.nnz(), 0);
    }
}

//! Strided row-major block vectors for the batched multi-RHS solve path.
//!
//! A [`MultiVec`] holds `k` right-hand-side columns interleaved row-major:
//! row `i` occupies `data[i*k .. (i+1)*k]`, so one matrix-row traversal can
//! advance all `k` columns with unit-stride lane access. Column `j` of every
//! batched kernel performs *exactly* the per-row arithmetic (same order,
//! same chunking) as the corresponding single-vector kernel on the extracted
//! column — that is the determinism contract the batched solve path is built
//! on: batch column `j` is bitwise identical to a solo solve of that RHS.
//!
//! The batched level-1 kernels here mirror [`crate::vecops`]: the same
//! fixed 4096-row chunking, the same sequential-below-threshold cutover,
//! and the same linear chunk-order fold, applied lane-wise. Inner loops are
//! monomorphized over k ∈ {1, 2, 4, 8} (fixed-width lane arrays the
//! compiler can keep in registers and vectorize); other widths fall back to
//! a dynamic-lane loop with identical per-lane arithmetic order.

use rayon::prelude::*;

/// Row-chunk length shared with `vecops`; fixed so reductions are
/// reproducible across pool sizes.
const CHUNK: usize = 4096;

/// `k` right-hand-side columns stored interleaved row-major.
///
/// `Default` is the empty `0 × 0` block, so workspace fields can be
/// `std::mem::take`n while their owner stays borrowable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultiVec {
    data: Vec<f64>,
    n: usize,
    k: usize,
}

impl MultiVec {
    /// A zero-filled `n × k` block vector.
    // ALLOC: constructor — allocation is the point; each solve-path
    // call site carries its own justification.
    pub fn new(n: usize, k: usize) -> Self {
        MultiVec {
            data: vec![0.0; n * k],
            n,
            k,
        }
    }

    /// Builds a block vector from `k` equal-length columns.
    ///
    /// # Panics
    /// If the columns differ in length.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        let k = cols.len();
        let n = cols.first().map_or(0, Vec::len);
        let mut mv = MultiVec::new(n, k);
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(col.len(), n, "column {j} length mismatch");
            mv.set_col(j, col);
        }
        mv
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of columns (batch width).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The interleaved backing storage (`n * k` values, row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable interleaved backing storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The `k` lanes of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.k..(i + 1) * self.k]
    }

    /// Mutable lanes of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.k..(i + 1) * self.k]
    }

    /// Extracts column `j` into a fresh vector.
    // ALLOC: returns an owned column; the solve-path use is the
    // convergence-freeze snapshot, justified at its call site.
    pub fn col(&self, j: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.copy_col_into(j, &mut out);
        out
    }

    /// Extracts column `j` into `out` (length `n`).
    pub fn copy_col_into(&self, j: usize, out: &mut [f64]) {
        assert!(j < self.k); // PANIC-FREE: shape guard; solve buffers are sized at setup.
        assert_eq!(out.len(), self.n); // PANIC-FREE: see above.
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[i * self.k + j];
        }
    }

    /// Overwrites column `j` from `src` (length `n`).
    pub fn set_col(&mut self, j: usize, src: &[f64]) {
        assert!(j < self.k); // PANIC-FREE: shape guard; solve buffers are sized at setup.
        assert_eq!(src.len(), self.n); // PANIC-FREE: see above.
        for (i, s) in src.iter().enumerate() {
            self.data[i * self.k + j] = *s;
        }
    }

    /// All columns, extracted.
    pub fn columns(&self) -> Vec<Vec<f64>> {
        (0..self.k).map(|j| self.col(j)).collect()
    }

    /// Sets every entry of every column to `v`.
    pub fn fill(&mut self, v: f64) {
        crate::vecops::fill(&mut self.data, v);
    }

    /// Copies `src` into `self` (shapes must match).
    pub fn copy_from(&mut self, src: &MultiVec) {
        assert_eq!(self.n, src.n); // PANIC-FREE: shape guard; solve buffers are sized at setup.
        assert_eq!(self.k, src.k); // PANIC-FREE: see above.
        crate::vecops::copy(&src.data, &mut self.data);
    }
}

/// Dispatches `body` with a monomorphized lane width for k ∈ {1, 2, 4, 8}
/// and a dynamic fallback otherwise. The per-lane arithmetic order is
/// identical in every arm; only code generation differs.
macro_rules! lanes {
    ($k:expr, $func:ident ( $($arg:expr),* $(,)? )) => {
        match $k {
            1 => $func::<1>($($arg),*),
            2 => $func::<2>($($arg),*),
            4 => $func::<4>($($arg),*),
            8 => $func::<8>($($arg),*),
            _ => $func::<0>($($arg),*),
        }
    };
}
pub(crate) use lanes;

/// Accumulates `acc[j] += x[i,j] * y[i,j]` over `rows`, per-column in
/// ascending row order (the same add sequence `vecops::dot_seq` performs
/// on the extracted column). `K == 0` means "use the dynamic width `k`".
fn dot_rows<const K: usize>(
    xd: &[f64],
    yd: &[f64],
    k: usize,
    rows: std::ops::Range<usize>,
    acc: &mut [f64],
) {
    if K != 0 {
        debug_assert_eq!(K, k);
        let mut a = [0.0f64; 8];
        for i in rows {
            let b = i * K;
            for j in 0..K {
                a[j] += xd[b + j] * yd[b + j];
            }
        }
        // Callers pass zeroed accumulators; plain assignment keeps the
        // column's fold exactly `0.0 + x0*y0 + x1*y1 + …` — the same add
        // sequence as `dot_seq`, with no extra `0.0 +` step.
        acc[..K].copy_from_slice(&a[..K]);
    } else {
        for i in rows {
            let b = i * k;
            for (j, aj) in acc.iter_mut().enumerate() {
                *aj += xd[b + j] * yd[b + j];
            }
        }
    }
}

/// Per-column dot products: `out[j] = x[:,j] · y[:,j]`.
///
/// Bitwise identical, per column, to [`crate::vecops::dot`] on the
/// extracted columns: the same sequential cutover, the same 4096-row
/// chunk partials, and the same linear chunk-order fold.
pub fn dot_batch(x: &MultiVec, y: &MultiVec, out: &mut [f64]) {
    assert_eq!(x.n, y.n); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    assert_eq!(x.k, y.k); // PANIC-FREE: see above.
    assert_eq!(out.len(), x.k); // PANIC-FREE: see above.
    let (n, k) = (x.n, x.k);
    out.fill(0.0);
    if k == 0 {
        return;
    }
    if n < 2 * CHUNK {
        lanes!(k, dot_rows(&x.data, &y.data, k, 0..n, out));
        return;
    }
    let nchunks = n.div_ceil(CHUNK);
    let mut partials = vec![0.0f64; nchunks * k]; // ALLOC: per-chunk partials for the ordered combine, O(k·n/CHUNK)
    partials.par_chunks_mut(k).enumerate().for_each(|(ci, p)| {
        let s = ci * CHUNK;
        let e = (s + CHUNK).min(n);
        lanes!(k, dot_rows(&x.data, &y.data, k, s..e, p));
    });
    for chunk in partials.chunks_exact(k) {
        for (o, p) in out.iter_mut().zip(chunk) {
            *o += p;
        }
    }
}

/// Per-column Euclidean norms: `out[j] = ||x[:,j]||`.
pub fn norm2_batch(x: &MultiVec, out: &mut [f64]) {
    let mut sq = vec![0.0; x.k]; // ALLOC: k-sized scratch, not O(n)
    dot_batch(x, x, &mut sq);
    for (o, s) in out.iter_mut().zip(&sq) {
        *o = s.sqrt();
    }
}

fn axpy_rows<const K: usize>(alpha: &[f64], xd: &[f64], yd: &mut [f64], k: usize) {
    if K != 0 {
        debug_assert_eq!(K, k);
        let mut al = [0.0f64; 8];
        al[..K].copy_from_slice(&alpha[..K]);
        for (yr, xr) in yd.chunks_exact_mut(K).zip(xd.chunks_exact(K)) {
            for j in 0..K {
                yr[j] += al[j] * xr[j];
            }
        }
    } else {
        for (yr, xr) in yd.chunks_exact_mut(k).zip(xd.chunks_exact(k)) {
            for j in 0..k {
                yr[j] += alpha[j] * xr[j];
            }
        }
    }
}

/// Per-column `y[:,j] += alpha[j] * x[:,j]`.
///
/// Elementwise (no reduction), so column `j` is bitwise identical to
/// [`crate::vecops::axpy`] on the extracted column.
pub fn axpy_batch(alpha: &[f64], x: &MultiVec, y: &mut MultiVec) {
    assert_eq!(x.n, y.n);
    assert_eq!(x.k, y.k);
    assert_eq!(alpha.len(), x.k);
    let (n, k) = (x.n, x.k);
    if k == 0 {
        return;
    }
    if n < 2 * CHUNK {
        lanes!(k, axpy_rows(alpha, &x.data, &mut y.data, k));
    } else {
        y.data
            .par_chunks_mut(CHUNK * k)
            .zip(x.data.par_chunks(CHUNK * k))
            .for_each(|(cy, cx)| lanes!(k, axpy_rows(alpha, cx, cy, k)));
    }
}

fn xpby_rows<const K: usize>(xd: &[f64], beta: &[f64], yd: &mut [f64], k: usize) {
    if K != 0 {
        debug_assert_eq!(K, k);
        let mut be = [0.0f64; 8];
        be[..K].copy_from_slice(&beta[..K]);
        for (yr, xr) in yd.chunks_exact_mut(K).zip(xd.chunks_exact(K)) {
            for j in 0..K {
                yr[j] = xr[j] + be[j] * yr[j];
            }
        }
    } else {
        for (yr, xr) in yd.chunks_exact_mut(k).zip(xd.chunks_exact(k)) {
            for j in 0..k {
                yr[j] = xr[j] + beta[j] * yr[j];
            }
        }
    }
}

/// Per-column `y[:,j] = x[:,j] + beta[j] * y[:,j]`.
pub fn xpby_batch(x: &MultiVec, beta: &[f64], y: &mut MultiVec) {
    assert_eq!(x.n, y.n);
    assert_eq!(x.k, y.k);
    assert_eq!(beta.len(), x.k);
    let (n, k) = (x.n, x.k);
    if k == 0 {
        return;
    }
    if n < 2 * CHUNK {
        lanes!(k, xpby_rows(&x.data, beta, &mut y.data, k));
    } else {
        y.data
            .par_chunks_mut(CHUNK * k)
            .zip(x.data.par_chunks(CHUNK * k))
            .for_each(|(cy, cx)| lanes!(k, xpby_rows(cx, beta, cy, k)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    fn wave(n: usize, seed: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 31 + seed * 7) % 23) as f64 * 0.125 - 1.0)
            .collect()
    }

    #[test]
    fn layout_round_trips_columns() {
        let cols: Vec<Vec<f64>> = (0..3).map(|j| wave(17, j)).collect();
        let mv = MultiVec::from_columns(&cols);
        assert_eq!(mv.n(), 17);
        assert_eq!(mv.k(), 3);
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(&mv.col(j), col);
        }
        assert_eq!(mv.row(5), &[cols[0][5], cols[1][5], cols[2][5]]);
    }

    #[test]
    fn dot_batch_bitwise_matches_solo_dot() {
        // Cross the parallel threshold so the chunked fold is exercised,
        // and cover a monomorphized width (4) and the dynamic fallback (3).
        for (n, k) in [(100, 4), (3 * CHUNK + 17, 4), (2 * CHUNK + 5, 3), (64, 8)] {
            let xc: Vec<Vec<f64>> = (0..k).map(|j| wave(n, j)).collect();
            let yc: Vec<Vec<f64>> = (0..k).map(|j| wave(n, j + 10)).collect();
            let x = MultiVec::from_columns(&xc);
            let y = MultiVec::from_columns(&yc);
            let mut out = vec![0.0; k];
            dot_batch(&x, &y, &mut out);
            for j in 0..k {
                let solo = vecops::dot(&xc[j], &yc[j]);
                assert_eq!(out[j].to_bits(), solo.to_bits(), "n={n} k={k} col {j}");
            }
        }
    }

    #[test]
    fn norm2_batch_bitwise_matches_solo() {
        let n = 2 * CHUNK + 100;
        let cols: Vec<Vec<f64>> = (0..2).map(|j| wave(n, j)).collect();
        let x = MultiVec::from_columns(&cols);
        let mut out = vec![0.0; 2];
        norm2_batch(&x, &mut out);
        for j in 0..2 {
            assert_eq!(out[j].to_bits(), vecops::norm2(&cols[j]).to_bits());
        }
    }

    #[test]
    fn axpy_xpby_batch_bitwise_match_solo() {
        for n in [33usize, 2 * CHUNK + 9] {
            let k = 4;
            let alpha: Vec<f64> = (0..k).map(|j| 0.5 + j as f64).collect();
            let xc: Vec<Vec<f64>> = (0..k).map(|j| wave(n, j)).collect();
            let yc: Vec<Vec<f64>> = (0..k).map(|j| wave(n, j + 4)).collect();
            let x = MultiVec::from_columns(&xc);
            let mut y = MultiVec::from_columns(&yc);
            axpy_batch(&alpha, &x, &mut y);
            for j in 0..k {
                let mut solo = yc[j].clone();
                vecops::axpy(alpha[j], &xc[j], &mut solo);
                assert_eq!(y.col(j), solo, "axpy col {j}");
            }
            let mut y2 = MultiVec::from_columns(&yc);
            xpby_batch(&x, &alpha, &mut y2);
            for j in 0..k {
                let mut solo = yc[j].clone();
                vecops::xpby(&xc[j], alpha[j], &mut solo);
                assert_eq!(y2.col(j), solo, "xpby col {j}");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let x = MultiVec::new(10, 0);
        let y = MultiVec::new(10, 0);
        let mut out = vec![];
        dot_batch(&x, &y, &mut out);
        assert!(out.is_empty());
        assert!(x.columns().is_empty());
    }
}

//! Level-1 vector kernels (the paper's "BLAS1" solve-phase component).
//!
//! Sequential and rayon-parallel versions are provided. Parallel reductions
//! reassociate floating-point additions; famg uses fixed chunking so the
//! result is deterministic for a given thread count.

use rayon::prelude::*;

/// Chunk length used by the deterministic parallel reductions. Fixed (not
/// thread-count dependent) so results are reproducible across pool sizes.
const CHUNK: usize = 4096;

/// Sequential dot product.
pub fn dot_seq(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Chunk partials per reduction super-block. Each super-block covers
/// `PARTIAL_LANES * CHUNK` elements; partials land in a fixed stack array
/// so the reduction never allocates.
const PARTIAL_LANES: usize = 512;

/// Deterministic parallel dot product (fixed-chunk tree reduction).
///
/// Allocation-free: per-chunk partials are written into a fixed-size stack
/// array and folded sequentially in chunk order — the same fold shape (and
/// therefore bitwise the same result) as the historical
/// `par_chunks(CHUNK).map(dot_seq).collect::<Vec<_>>().sum()` reduction,
/// which heap-allocated a partials vector on every call. Vectors longer
/// than one super-block reuse the array: the running total keeps absorbing
/// partials in ascending chunk order, so the linear fold is unchanged.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    if x.len() < 2 * CHUNK {
        return dot_seq(x, y);
    }
    let mut partials = [0.0f64; PARTIAL_LANES];
    let mut total = 0.0;
    let block = PARTIAL_LANES * CHUNK;
    for (bx, by) in x.chunks(block).zip(y.chunks(block)) {
        let nchunks = bx.len().div_ceil(CHUNK);
        partials[..nchunks]
            .par_iter_mut()
            .enumerate()
            .for_each(|(ci, p)| {
                let s = ci * CHUNK;
                let e = (s + CHUNK).min(bx.len());
                *p = dot_seq(&bx[s..e], &by[s..e]);
            });
        for &p in &partials[..nchunks] {
            total += p;
        }
    }
    total
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    if x.len() < 2 * CHUNK {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    } else {
        y.par_chunks_mut(CHUNK)
            .zip(x.par_chunks(CHUNK))
            .for_each(|(cy, cx)| {
                for (yi, xi) in cy.iter_mut().zip(cx) {
                    *yi += alpha * xi;
                }
            });
    }
}

/// `y = x + beta * y` (scaled update used by residual corrections).
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    if x.len() < 2 * CHUNK {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = xi + beta * *yi;
        }
    } else {
        y.par_chunks_mut(CHUNK)
            .zip(x.par_chunks(CHUNK))
            .for_each(|(cy, cx)| {
                for (yi, xi) in cy.iter_mut().zip(cx) {
                    *yi = xi + beta * *yi;
                }
            });
    }
}

/// `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    if x.len() < 2 * CHUNK {
        for xi in x.iter_mut() {
            *xi *= alpha;
        }
    } else {
        x.par_chunks_mut(CHUNK).for_each(|c| {
            for xi in c {
                *xi *= alpha;
            }
        });
    }
}

/// Copies `src` into `dst` (parallel memcpy for large vectors).
pub fn copy(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len()); // PANIC-FREE: shape guard; solve buffers are sized at setup.
    if src.len() < 4 * CHUNK {
        dst.copy_from_slice(src);
    } else {
        dst.par_chunks_mut(CHUNK)
            .zip(src.par_chunks(CHUNK))
            .for_each(|(d, s)| d.copy_from_slice(s));
    }
}

/// Sets every element to `v`.
pub fn fill(x: &mut [f64], v: f64) {
    if x.len() < 4 * CHUNK {
        x.fill(v);
    } else {
        x.par_chunks_mut(CHUNK).for_each(|c| c.fill(v));
    }
}

/// `z = x - y` into a fresh vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Maximum absolute entry.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_bitwise_matches_legacy_reduction_order() {
        // The allocation-free stack-array fold must reproduce the
        // historical `collect::<Vec<_>>().into_iter().sum()` reduction bit
        // for bit: same chunk partials, same linear chunk-order fold.
        // Cover one super-block, a ragged tail, and a second super-block.
        for n in [
            2 * CHUNK,
            3 * CHUNK + 17,
            PARTIAL_LANES * CHUNK + 5 * CHUNK + 3,
        ] {
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * 31) % 23) as f64 * 0.125 - 1.0)
                .collect();
            let y: Vec<f64> = (0..n).map(|i| ((i * 7) % 19) as f64 * 0.25 - 2.0).collect();
            let legacy: f64 = x
                .par_chunks(CHUNK)
                .zip(y.par_chunks(CHUNK))
                .map(|(cx, cy)| dot_seq(cx, cy))
                .collect::<Vec<_>>()
                .into_iter()
                .sum();
            assert_eq!(dot(&x, &y).to_bits(), legacy.to_bits(), "n={n}");
        }
    }

    #[test]
    fn dot_matches_sequential_on_large_input() {
        let n = 3 * CHUNK + 17;
        let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.25).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let a = dot_seq(&x, &y);
        let b = dot(&x, &y);
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn axpy_small_and_large() {
        for n in [5usize, 3 * CHUNK] {
            let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut y = vec![1.0; n];
            axpy(2.0, &x, &mut y);
            assert_eq!(y[0], 1.0);
            assert_eq!(y[n - 1], 1.0 + 2.0 * (n - 1) as f64);
        }
    }

    #[test]
    fn xpby_combines() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0]);
    }

    #[test]
    fn scale_and_fill() {
        let mut x = vec![2.0; 10];
        scale(0.5, &mut x);
        assert!(x.iter().all(|&v| v == 1.0));
        fill(&mut x, -3.0);
        assert!(x.iter().all(|&v| v == -3.0));
    }

    #[test]
    fn norms() {
        let x = vec![3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3.0, 1.0], &[1.0, 1.0]), vec![2.0, 0.0]);
    }

    #[test]
    fn copy_large() {
        let n = 5 * CHUNK;
        let src: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut dst = vec![0.0; n];
        copy(&src, &mut dst);
        assert_eq!(src, dst);
    }
}

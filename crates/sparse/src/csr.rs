//! Compressed sparse row (CSR) matrix storage.
//!
//! The layout matches HYPRE's `hypre_CSRMatrix`: a `rowptr` array of
//! `nrows + 1` offsets into parallel `colidx`/`values` arrays. Rows may be
//! kept in *partitioned* (not fully sorted) column order — several famg
//! kernels deliberately reorder columns within a row (lower/upper/external
//! splits, coarse/fine splits), so sortedness is a property checked where
//! needed rather than a type invariant.

use std::fmt;

/// A sparse matrix in compressed sparse row format over `f64` values.
#[derive(Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<usize>,
    values: Vec<f64>,
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Csr({}x{}, nnz={})", self.nrows, self.ncols, self.nnz())
    }
}

impl Csr {
    /// Builds a CSR matrix from raw parts, validating structural invariants.
    ///
    /// # Panics
    /// Panics if `rowptr` has the wrong length, is not monotone, does not
    /// span `colidx`/`values`, or any column index is out of bounds.
    // PANIC-FREE: CSR structural validation. Solve-path callers
    // (`RowBuilder::finish`) emit rowptr/colidx/values that satisfy
    // these invariants by construction; the asserts guard external
    // constructors feeding malformed parts.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(rowptr.len(), nrows + 1, "rowptr length must be nrows+1");
        assert_eq!(rowptr[0], 0, "rowptr must start at 0");
        assert_eq!(
            *rowptr.last().unwrap(),
            colidx.len(),
            "rowptr must end at nnz"
        );
        assert_eq!(colidx.len(), values.len(), "colidx/values length mismatch");
        assert!(
            rowptr.windows(2).all(|w| w[0] <= w[1]),
            "rowptr must be monotone non-decreasing"
        );
        assert!(
            colidx.iter().all(|&c| c < ncols),
            "column index out of bounds"
        );
        Csr {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Builds a CSR matrix without validating invariants.
    ///
    /// Used by kernels that construct output structurally-by-construction;
    /// debug builds still validate.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        if cfg!(debug_assertions) {
            Self::from_parts(nrows, ncols, rowptr, colidx, values)
        } else {
            Csr {
                nrows,
                ncols,
                rowptr,
                colidx,
                values,
            }
        }
    }

    /// An `nrows x ncols` matrix with no stored entries.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colidx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds from `(row, col, value)` triplets, summing duplicates.
    /// Rows come out with sorted column indices.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nrows];
        for (r, c, v) in triplets {
            assert!(r < nrows && c < ncols, "triplet out of bounds");
            per_row[r].push((c, v));
        }
        let mut rowptr = Vec::with_capacity(nrows + 1);
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        rowptr.push(0);
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = 0.0;
                while i < row.len() && row[i].0 == c {
                    v += row[i].1;
                    i += 1;
                }
                colidx.push(c);
                values.push(v);
            }
            rowptr.push(colidx.len());
        }
        Csr {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Builds from a dense row-major slice, dropping exact zeros.
    pub fn from_dense(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        let mut rowptr = Vec::with_capacity(nrows + 1);
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        rowptr.push(0);
        for i in 0..nrows {
            for j in 0..ncols {
                let v = data[i * ncols + j];
                if v != 0.0 {
                    colidx.push(j);
                    values.push(v);
                }
            }
            rowptr.push(colidx.len());
        }
        Csr {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Row pointer array of length `nrows + 1`.
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column indices, parallel to [`Csr::values`].
    #[inline]
    pub fn colidx(&self) -> &[usize] {
        &self.colidx
    }

    /// Stored values, parallel to [`Csr::colidx`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable stored values (structure is immutable through this handle).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Mutable column indices and values together; used by in-place row
    /// reordering kernels (lower/upper partitioning, CF partitioning).
    #[inline]
    pub fn colidx_values_mut(&mut self) -> (&mut [usize], &mut [f64]) {
        (&mut self.colidx, &mut self.values)
    }

    /// The half-open nnz range of row `i`.
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.rowptr[i]..self.rowptr[i + 1]
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.colidx[self.row_range(i)]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_vals(&self, i: usize) -> &[f64] {
        &self.values[self.row_range(i)]
    }

    /// Iterates `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.row_cols(i)
            .iter()
            .copied()
            .zip(self.row_vals(i).iter().copied())
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// The stored value at `(i, j)`, or `None` when not stored.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        self.row_iter(i).find(|&(c, _)| c == j).map(|(_, v)| v)
    }

    /// The diagonal entry of row `i` (0.0 if absent).
    pub fn diag(&self, i: usize) -> f64 {
        self.get(i, i).unwrap_or(0.0)
    }

    /// Extracts the full diagonal as a vector.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.diag(i))
            .collect()
    }

    /// Converts to a dense row-major buffer (tests / coarsest solve only).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.nrows * self.ncols];
        for i in 0..self.nrows {
            for (c, v) in self.row_iter(i) {
                out[i * self.ncols + c] += v;
            }
        }
        out
    }

    /// Sorts column indices (and values) within every row ascending.
    pub fn sort_rows(&mut self) {
        let mut perm: Vec<usize> = Vec::new();
        for i in 0..self.nrows {
            let r = self.rowptr[i]..self.rowptr[i + 1];
            let cols = &self.colidx[r.clone()];
            if cols.windows(2).all(|w| w[0] < w[1]) {
                continue;
            }
            perm.clear();
            perm.extend(0..cols.len());
            perm.sort_unstable_by_key(|&k| cols[k]);
            let sorted_cols: Vec<usize> = perm.iter().map(|&k| cols[k]).collect();
            let vals = &self.values[r.clone()];
            let sorted_vals: Vec<f64> = perm.iter().map(|&k| vals[k]).collect();
            self.colidx[r.clone()].copy_from_slice(&sorted_cols);
            self.values[r].copy_from_slice(&sorted_vals);
        }
    }

    /// True when every row has strictly increasing column indices.
    pub fn rows_sorted(&self) -> bool {
        (0..self.nrows).all(|i| self.row_cols(i).windows(2).all(|w| w[0] < w[1]))
    }

    /// True when no row stores the same column twice.
    pub fn no_duplicate_cols(&self) -> bool {
        let mut seen = vec![usize::MAX; self.ncols];
        for i in 0..self.nrows {
            for &c in self.row_cols(i) {
                if seen[c] == i {
                    return false;
                }
                seen[c] = i;
            }
        }
        true
    }

    /// True when the matrix is exactly symmetric in structure and values.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = crate::transpose::transpose(self);
        let mut a = self.clone();
        let mut b = t;
        a.sort_rows();
        b.sort_rows();
        if a.rowptr != b.rowptr || a.colidx != b.colidx {
            return false;
        }
        a.values
            .iter()
            .zip(&b.values)
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    /// Frobenius norm of `self - other`; matrices must be the same shape.
    pub fn frob_diff(&self, other: &Csr) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let da = self.to_dense();
        let db = other.to_dense();
        da.iter()
            .zip(&db)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// True when `other` stores the identical sparsity pattern: same
    /// shape, same row pointers, and same column indices *in the same
    /// order*. This is the guard used by the numeric-refresh kernels,
    /// which overwrite values positionally over a frozen pattern.
    pub fn same_pattern(&self, other: &Csr) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.rowptr == other.rowptr
            && self.colidx == other.colidx
    }

    /// Drops stored entries with `|v| <= threshold`, keeping the diagonal.
    pub fn drop_small(&self, threshold: f64) -> Csr {
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        rowptr.push(0);
        for i in 0..self.nrows {
            for (c, v) in self.row_iter(i) {
                if c == i || v.abs() > threshold {
                    colidx.push(c);
                    values.push(v);
                }
            }
            rowptr.push(colidx.len());
        }
        Csr::from_parts_unchecked(self.nrows, self.ncols, rowptr, colidx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [1 2 0]
        // [0 3 4]
        // [5 0 6]
        Csr::from_parts(
            3,
            3,
            vec![0, 2, 4, 6],
            vec![0, 1, 1, 2, 0, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
    }

    #[test]
    fn shape_and_nnz() {
        let a = small();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 6);
        assert_eq!(a.row_nnz(0), 2);
    }

    #[test]
    fn get_and_diag() {
        let a = small();
        assert_eq!(a.get(0, 1), Some(2.0));
        assert_eq!(a.get(0, 2), None);
        assert_eq!(a.diag(1), 3.0);
        assert_eq!(a.diag(0), 1.0);
        assert_eq!(a.diagonal(), vec![1.0, 3.0, 6.0]);
    }

    #[test]
    fn dense_roundtrip() {
        let a = small();
        let d = a.to_dense();
        let b = Csr::from_dense(3, 3, &d);
        assert_eq!(a, b);
    }

    #[test]
    fn triplets_sum_duplicates() {
        let a = Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 4.0)]);
        assert_eq!(a.get(0, 0), Some(3.0));
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn identity_matches_dense() {
        let i3 = Csr::identity(3);
        assert_eq!(i3.to_dense(), vec![1., 0., 0., 0., 1., 0., 0., 0., 1.]);
    }

    #[test]
    fn sort_rows_orders_columns() {
        let mut a = Csr::from_parts(1, 4, vec![0, 3], vec![3, 0, 2], vec![3.0, 0.5, 2.0]);
        assert!(!a.rows_sorted());
        a.sort_rows();
        assert!(a.rows_sorted());
        assert_eq!(a.row_cols(0), &[0, 2, 3]);
        assert_eq!(a.row_vals(0), &[0.5, 2.0, 3.0]);
    }

    #[test]
    fn symmetric_detection() {
        let s = Csr::from_triplets(
            2,
            2,
            vec![(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)],
        );
        assert!(s.is_symmetric(1e-14));
        let ns = Csr::from_triplets(2, 2, vec![(0, 1, -1.0), (1, 1, 2.0)]);
        assert!(!ns.is_symmetric(1e-14));
    }

    #[test]
    fn drop_small_keeps_diagonal() {
        let a = Csr::from_triplets(
            2,
            2,
            vec![(0, 0, 1e-12), (0, 1, 5.0), (1, 0, 1e-12), (1, 1, 2.0)],
        );
        let b = a.drop_small(1e-6);
        assert_eq!(b.get(0, 0), Some(1e-12)); // diagonal kept
        assert_eq!(b.get(1, 0), None); // small off-diagonal dropped
        assert_eq!(b.get(0, 1), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "rowptr must end at nnz")]
    fn invalid_rowptr_panics() {
        Csr::from_parts(1, 1, vec![0, 2], vec![0], vec![1.0]);
    }

    #[test]
    fn zero_matrix() {
        let z = Csr::zero(3, 4);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.to_dense(), vec![0.0; 12]);
    }

    #[test]
    fn duplicate_detection() {
        let dup = Csr::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
        assert!(!dup.no_duplicate_cols());
        assert!(small().no_duplicate_cols());
    }
}

//! Sparse accumulator (SPA) — the marker-array idiom of §3.1.1.
//!
//! Accumulating a weighted sum of sparse vectors is the inner operation of
//! SpGEMM, strength-matrix construction and interpolation construction. The
//! classic implementation keeps a `marker` array: `marker[col]` stores the
//! position in the output row where column `col` has been placed, or a
//! sentinel older than the current row's start offset when the column has
//! not yet been seen. The marker array doubles as the inverse map of the
//! output row's column indices — exactly the structure the paper identifies
//! as the branch-heavy bottleneck of the setup phase.

/// A reusable sparse accumulator over columns `0..ncols`.
///
/// A single `Spa` is reused across all rows processed by one thread; reset
/// between rows is O(row nnz), not O(ncols), because positions are compared
/// against a per-row generation stamp rather than cleared.
pub struct Spa {
    /// `marker[c] = position` stamp; valid iff `>= row_start` of current row.
    marker: Vec<usize>,
    /// Accumulated values, parallel with `cols`.
    vals: Vec<f64>,
    /// Columns touched by the current row, in first-touch order.
    cols: Vec<usize>,
    /// Monotone stamp base so markers from previous rows read as stale.
    epoch: usize,
}

const STALE: usize = usize::MAX;

impl Spa {
    /// Creates an accumulator for vectors with `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        Spa {
            marker: vec![STALE; ncols],
            vals: Vec::new(),
            cols: Vec::new(),
            epoch: 0,
        }
    }

    /// Number of distinct columns accumulated in the current row.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the current row holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Adds `v` into column `c` of the current row.
    #[inline]
    pub fn add(&mut self, c: usize, v: f64) {
        let m = self.marker[c];
        if m < self.epoch || m == STALE || m - self.epoch >= self.cols.len() {
            self.marker[c] = self.epoch + self.cols.len();
            self.cols.push(c);
            self.vals.push(v);
        } else {
            self.vals[m - self.epoch] += v;
        }
    }

    /// Position of column `c` in the current row, if present.
    #[inline]
    pub fn position(&self, c: usize) -> Option<usize> {
        let m = self.marker[c];
        if m != STALE && m >= self.epoch && m - self.epoch < self.cols.len() {
            Some(m - self.epoch)
        } else {
            None
        }
    }

    /// The value accumulated for column `c` in the current row (0.0 absent).
    #[inline]
    pub fn get(&self, c: usize) -> f64 {
        self.position(c).map_or(0.0, |p| self.vals[p])
    }

    /// Columns of the current row in first-touch order.
    #[inline]
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Values of the current row, parallel with [`Spa::cols`].
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Appends the current row to output CSR arrays and resets for the next
    /// row. Returns the number of entries emitted.
    pub fn flush_into(&mut self, colidx: &mut Vec<usize>, values: &mut Vec<f64>) -> usize {
        let n = self.cols.len();
        colidx.extend_from_slice(&self.cols);
        values.extend_from_slice(&self.vals);
        self.reset();
        n
    }

    /// Appends the current row *sorted by column* (used where downstream
    /// kernels require sorted rows) and resets.
    pub fn flush_sorted_into(&mut self, colidx: &mut Vec<usize>, values: &mut Vec<f64>) -> usize {
        let n = self.cols.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&k| self.cols[k]);
        colidx.extend(order.iter().map(|&k| self.cols[k]));
        values.extend(order.iter().map(|&k| self.vals[k]));
        self.reset();
        n
    }

    /// Discards the current row's contents.
    #[inline]
    pub fn reset(&mut self) {
        // Advance the epoch past every stamp handed out for this row so the
        // marker array needs no clearing.
        self.epoch += self.cols.len();
        // Guard against (astronomically unlikely) epoch wrap.
        if self.epoch > usize::MAX / 2 {
            self.marker.fill(STALE);
            self.epoch = 0;
        }
        self.cols.clear();
        self.vals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_duplicates() {
        let mut spa = Spa::new(8);
        spa.add(3, 1.0);
        spa.add(5, 2.0);
        spa.add(3, 4.0);
        assert_eq!(spa.len(), 2);
        assert_eq!(spa.get(3), 5.0);
        assert_eq!(spa.get(5), 2.0);
        assert_eq!(spa.get(0), 0.0);
    }

    #[test]
    fn flush_preserves_first_touch_order() {
        let mut spa = Spa::new(8);
        spa.add(5, 1.0);
        spa.add(2, 2.0);
        spa.add(5, 1.0);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let n = spa.flush_into(&mut cols, &mut vals);
        assert_eq!(n, 2);
        assert_eq!(cols, vec![5, 2]);
        assert_eq!(vals, vec![2.0, 2.0]);
        assert!(spa.is_empty());
    }

    #[test]
    fn flush_sorted_orders_columns() {
        let mut spa = Spa::new(8);
        spa.add(5, 1.0);
        spa.add(2, 2.0);
        spa.add(7, 3.0);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        spa.flush_sorted_into(&mut cols, &mut vals);
        assert_eq!(cols, vec![2, 5, 7]);
        assert_eq!(vals, vec![2.0, 1.0, 3.0]);
    }

    #[test]
    fn reuse_across_rows_does_not_leak() {
        let mut spa = Spa::new(4);
        spa.add(1, 1.0);
        spa.add(2, 2.0);
        spa.reset();
        // Column 1 must read as absent in the new row.
        assert_eq!(spa.get(1), 0.0);
        spa.add(1, 7.0);
        assert_eq!(spa.get(1), 7.0);
        assert_eq!(spa.len(), 1);
    }

    #[test]
    fn many_rows_epoch_progression() {
        let mut spa = Spa::new(3);
        for row in 0..1000 {
            spa.add(row % 3, 1.0);
            spa.add((row + 1) % 3, 1.0);
            assert_eq!(spa.len(), 2);
            spa.reset();
        }
    }

    #[test]
    fn position_lookup() {
        let mut spa = Spa::new(6);
        spa.add(4, 1.0);
        spa.add(0, 1.0);
        assert_eq!(spa.position(4), Some(0));
        assert_eq!(spa.position(0), Some(1));
        assert_eq!(spa.position(2), None);
    }
}

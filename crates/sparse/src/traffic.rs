//! Memory-traffic estimates for the bandwidth-bound analysis of §5.1.
//!
//! The paper argues AMG performance is bounded by STREAM bandwidth and
//! compares *achieved* effective bandwidth against the hardware bound
//! (Table 1's last row). These estimators count the compulsory bytes each
//! kernel must move (matrix structure + values once, vectors once per
//! logical access), so a measured runtime converts into an effective
//! bandwidth figure: `traffic / time`, to be read against the host's
//! STREAM number.

use crate::csr::Csr;

/// Bytes per index (stored as 64-bit here; HYPRE uses 32-bit locals).
pub const IDX_BYTES: usize = 8;
/// Bytes per value.
pub const VAL_BYTES: usize = 8;

/// Compulsory traffic of one `y = A x` (read A once, x once, write y).
pub fn spmv_bytes(a: &Csr) -> usize {
    let nnz = a.nnz();
    let structure = (a.nrows() + 1) * IDX_BYTES + nnz * IDX_BYTES;
    let values = nnz * VAL_BYTES;
    let vectors = (a.ncols() + a.nrows()) * VAL_BYTES;
    structure + values + vectors
}

/// Compulsory traffic of one hybrid GS half-sweep (reads A, b, x and the
/// snapshot; writes x).
pub fn gs_sweep_bytes(a: &Csr) -> usize {
    spmv_bytes(a) + 2 * a.nrows() * VAL_BYTES
}

/// Compulsory traffic of `C = A·B` counting each input read once and the
/// output written once (the one-pass kernel's model; the two-pass
/// baseline reads the inputs twice — multiply input terms accordingly).
pub fn spgemm_bytes(a: &Csr, b: &Csr, c: &Csr) -> usize {
    matrix_bytes(a) + matrix_bytes(b) + matrix_bytes(c)
}

/// Bytes of one full read (or write) of a CSR matrix.
pub fn matrix_bytes(m: &Csr) -> usize {
    (m.nrows() + 1) * IDX_BYTES + m.nnz() * (IDX_BYTES + VAL_BYTES)
}

/// Effective bandwidth in GB/s for `bytes` moved in `seconds`.
pub fn effective_bandwidth_gbs(bytes: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    bytes as f64 / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_traffic_counts_everything_once() {
        let a = Csr::from_triplets(2, 3, vec![(0, 0, 1.0), (1, 2, 2.0)]);
        // rowptr 3*8 + colidx 2*8 + vals 2*8 + x 3*8 + y 2*8
        assert_eq!(spmv_bytes(&a), 24 + 16 + 16 + 24 + 16);
    }

    #[test]
    fn matrix_bytes_scale_with_nnz() {
        let a = Csr::identity(10);
        let b = Csr::identity(100);
        assert!(matrix_bytes(&b) > 9 * matrix_bytes(&a));
    }

    #[test]
    fn bandwidth_math() {
        assert_eq!(effective_bandwidth_gbs(2_000_000_000, 1.0), 2.0);
        assert_eq!(effective_bandwidth_gbs(100, 0.0), 0.0);
    }

    #[test]
    fn gs_heavier_than_spmv() {
        let a = Csr::identity(100);
        assert!(gs_sweep_bytes(&a) > spmv_bytes(&a));
    }
}

//! Sparse matrix–matrix multiplication (SpGEMM), Gustavson style.
//!
//! Three implementations reproduce the paper's §3.1.1 analysis:
//!
//! * [`spgemm_two_pass`] — the traditional baseline: a *symbolic* pass
//!   counts the merged non-zeros of every output row (reading both input
//!   matrices once), then a *numeric* pass re-reads both inputs and fills
//!   the exactly-sized output. The second read of `B`'s column/value arrays
//!   is the expensive non-contiguous traffic the paper eliminates.
//! * [`spgemm_one_pass`] — the optimized kernel: each thread gets a
//!   pre-allocated chunk sized by the cheap *upper bound*
//!   `Σ_{i∈chunk} Σ_{j∈A_i} nnz(B_j)` (requires only `A.colidx` and
//!   `B.rowptr`, both cheap reads), multiplies in a single pass, then the
//!   per-thread chunks are copied into the final contiguous result. One
//!   expensive read of `B` is traded for one contiguous output copy.
//! * [`numeric_only`] — re-computes values over a frozen symbolic pattern
//!   (row pointers + column indices already known). This is the paper's
//!   estimate of branching overhead in the sparse accumulator: it measures
//!   on average 2.1× speedup, bounding what branch elimination could gain.
//!
//! All variants produce rows in Gustavson first-touch order (deterministic,
//! independent of thread count because row blocks are processed in order
//! and each row's accumulation order is fixed by the input structure).
#![deny(unsafe_op_in_unsafe_fn)]

use crate::csr::Csr;
use crate::partition::{num_threads, split_rows_by_nnz};
use crate::spa::Spa;

/// Classic two-pass SpGEMM: symbolic count + exact-size numeric fill.
pub fn spgemm_two_pass(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();

    // Symbolic pass: count merged nnz per output row.
    let mut rowptr = vec![0usize; nrows + 1];
    {
        let mut marker = vec![usize::MAX; ncols];
        for i in 0..nrows {
            let mut cnt = 0usize;
            for &j in a.row_cols(i) {
                for &k in b.row_cols(j) {
                    if marker[k] != i {
                        marker[k] = i;
                        cnt += 1;
                    }
                }
            }
            rowptr[i + 1] = rowptr[i] + cnt;
        }
    }

    // Numeric pass: re-read both inputs and fill.
    let nnz = rowptr[nrows];
    let mut colidx = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    let mut spa = Spa::new(ncols);
    for i in 0..nrows {
        for (j, av) in a.row_iter(i) {
            for (k, bv) in b.row_iter(j) {
                spa.add(k, av * bv);
            }
        }
        let base = rowptr[i];
        let cols = spa.cols();
        let vals = spa.vals();
        colidx[base..base + cols.len()].copy_from_slice(cols);
        values[base..base + vals.len()].copy_from_slice(vals);
        spa.reset();
    }
    Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

/// Per-thread output staging buffer for the one-pass kernel.
struct Chunk {
    row_nnz: Vec<usize>,
    colidx: Vec<usize>,
    values: Vec<f64>,
}

/// One-pass SpGEMM with per-thread pre-allocated chunks (the paper's
/// optimized kernel). Parallel over nnz-balanced row blocks.
pub fn spgemm_one_pass(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();
    if nrows == 0 {
        return Csr::zero(0, ncols);
    }
    let blocks = split_rows_by_nnz(a.rowptr(), num_threads());

    // Single pass per thread: multiply into the pre-allocated chunk.
    let chunks: Vec<Chunk> = {
        use rayon::prelude::*;
        blocks
            .par_iter()
            .map(|r| {
                // Cheap upper bound: only A.colidx (contiguous) and
                // B.rowptr (indexed but tiny) are touched.
                let bound: usize = r
                    .clone()
                    .map(|i| a.row_cols(i).iter().map(|&j| b.row_nnz(j)).sum::<usize>())
                    .sum();
                let mut c = Chunk {
                    row_nnz: Vec::with_capacity(r.len()),
                    colidx: Vec::with_capacity(bound),
                    values: Vec::with_capacity(bound),
                };
                let mut spa = Spa::new(ncols);
                for i in r.clone() {
                    for (j, av) in a.row_iter(i) {
                        for (k, bv) in b.row_iter(j) {
                            spa.add(k, av * bv);
                        }
                    }
                    let n = spa.flush_into(&mut c.colidx, &mut c.values);
                    c.row_nnz.push(n);
                }
                c
            })
            .collect()
    };

    // Stitch: build rowptr from chunk row counts, then copy chunk payloads
    // (contiguous writes — the cheap side of the paper's trade).
    let mut rowptr = vec![0usize; nrows + 1];
    {
        let mut idx = 0usize;
        let mut acc = 0usize;
        for c in &chunks {
            for &n in &c.row_nnz {
                rowptr[idx] = acc;
                acc += n;
                idx += 1;
            }
        }
        rowptr[nrows] = acc;
    }
    let nnz = rowptr[nrows];
    let mut colidx = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    {
        let mut dst = 0usize;
        for c in &chunks {
            let n = c.colidx.len();
            colidx[dst..dst + n].copy_from_slice(&c.colidx);
            values[dst..dst + n].copy_from_slice(&c.values);
            dst += n;
        }
    }
    Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

/// Recomputes `C = A * B` values over a frozen symbolic pattern.
///
/// `c` must have the exact sparsity pattern of `A*B` (from a prior
/// [`spgemm_two_pass`]/[`spgemm_one_pass`]). The inner loop has no
/// first-touch branch: the marker array is pre-seeded from `C`'s columns,
/// so every accumulation is a straight indexed add. This kernel both
/// serves repeated products with identical structure (Gustavson's use
/// case) and bounds the sparse accumulator's branching overhead (§3.1.1).
pub fn numeric_only(a: &Csr, b: &Csr, c: &mut Csr) {
    assert_eq!(a.ncols(), b.nrows());
    assert_eq!(c.nrows(), a.nrows());
    assert_eq!(c.ncols(), b.ncols());
    let nrows = a.nrows();
    let blocks = split_rows_by_nnz(a.rowptr(), num_threads());
    // Split C's value buffer by block boundary so blocks write disjointly.
    let rowptr = c.rowptr().to_vec();
    let colidx = c.colidx().to_vec();
    let ncols = c.ncols();
    let values = c.values_mut();

    struct Ptr(*mut f64);
    // SAFETY: each block writes only the value range of its own rows
    // ([rowptr[block.start], rowptr[block.end])), and the blocks tile
    // the row space disjointly; nobody reads until the scope joins.
    unsafe impl Sync for Ptr {}
    let p = Ptr(values.as_mut_ptr());
    let _ = nrows;

    rayon::scope(|s| {
        for r in &blocks {
            let r = r.clone();
            let rowptr = &rowptr;
            let colidx = &colidx;
            let p = &p;
            s.spawn(move |_| {
                let mut marker = vec![usize::MAX; ncols];
                for i in r {
                    let start = rowptr[i];
                    let end = rowptr[i + 1];
                    for (off, &k) in colidx[start..end].iter().enumerate() {
                        marker[k] = start + off;
                        // SAFETY: rows within a block are disjoint slices of
                        // the values buffer.
                        unsafe { *p.0.add(start + off) = 0.0 };
                    }
                    for (j, av) in a.row_iter(i) {
                        for (k, bv) in b.row_iter(j) {
                            let pos = marker[k];
                            debug_assert!(pos >= start && pos < end, "pattern mismatch");
                            // SAFETY: pos lies in row i's value range,
                            // owned exclusively by this block.
                            unsafe { *p.0.add(pos) += av * bv };
                        }
                    }
                }
            });
        }
    });
}

/// Convenience: the production SpGEMM entry point (one-pass kernel).
pub fn spgemm(a: &Csr, b: &Csr) -> Csr {
    spgemm_one_pass(a, b)
}

/// Which SpGEMM implementation [`spgemm_with`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpgemmKernel {
    /// Size-based choice: two-pass below
    /// [`SPGEMM_TWO_PASS_MAX_FLOPS`], one-pass above.
    Auto,
    /// Always the one-pass chunked kernel (§3.1.1 optimized).
    OnePass,
    /// Always the two-pass symbolic+numeric kernel (baseline).
    TwoPass,
}

/// Work bound below which [`SpgemmKernel::Auto`] picks the two-pass
/// kernel. The one-pass kernel trades the second read of `B` for a
/// chunk-to-output copy; when the whole product is cache-resident the
/// re-read of `B` is served from cache and the extra copy is the larger
/// cost (EXPERIMENTS.md records 4.2 ms two-pass vs 5.0 ms one-pass at
/// such a scale). The bound is the same upper estimate the one-pass
/// kernel sizes its chunks with: `Σ_i Σ_{j∈A_i} nnz(B_j)`.
pub const SPGEMM_TWO_PASS_MAX_FLOPS: usize = 1 << 16;

/// Cheap upper bound on the multiply-add count of `A·B` (only touches
/// `A.colidx` and `B.rowptr`).
pub fn spgemm_flops_bound(a: &Csr, b: &Csr) -> usize {
    a.colidx().iter().map(|&j| b.row_nnz(j)).sum()
}

/// SpGEMM with an explicit kernel choice. `Auto` applies the
/// cache-residency heuristic; the other variants force a path (used by
/// the ablation benches so either kernel stays measurable in isolation).
/// All kernels produce identical results, so the choice is purely a
/// performance knob.
pub fn spgemm_with(kernel: SpgemmKernel, a: &Csr, b: &Csr) -> Csr {
    match kernel {
        SpgemmKernel::Auto => {
            if spgemm_flops_bound(a, b) <= SPGEMM_TWO_PASS_MAX_FLOPS {
                spgemm_two_pass(a, b)
            } else {
                spgemm_one_pass(a, b)
            }
        }
        SpgemmKernel::OnePass => spgemm_one_pass(a, b),
        SpgemmKernel::TwoPass => spgemm_two_pass(a, b),
    }
}

/// A frozen symbolic pattern for repeated products with identical
/// structure (Gustavson's original use case, §3.1.1): the first product
/// pays for the symbolic work, later products run the branch-free
/// numeric pass only.
#[derive(Debug)]
pub struct SpgemmPlan {
    c: Csr,
}

impl SpgemmPlan {
    /// Computes the first product and freezes its pattern.
    pub fn new(a: &Csr, b: &Csr) -> Self {
        SpgemmPlan {
            c: spgemm_one_pass(a, b),
        }
    }

    /// The most recent product.
    pub fn result(&self) -> &Csr {
        &self.c
    }

    /// Recomputes the product for inputs with the *same sparsity
    /// structure* as the planning pair (values may differ), returning the
    /// refreshed result.
    ///
    /// # Panics
    /// Debug builds panic if the structure deviates from the plan.
    pub fn execute(&mut self, a: &Csr, b: &Csr) -> &Csr {
        numeric_only(a, b, &mut self.c);
        &self.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_mm(a: &Csr, b: &Csr) -> Vec<f64> {
        let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
        let da = a.to_dense();
        let db = b.to_dense();
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for l in 0..k {
                let av = da[i * k + l];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * db[l * n + j];
                }
            }
        }
        out
    }

    fn random_csr(nrows: usize, ncols: usize, per_row: usize, seed: u64) -> Csr {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut trips = Vec::new();
        for i in 0..nrows {
            for _ in 0..per_row {
                let j = next() % ncols;
                let v = (next() % 19) as f64 - 9.0;
                if v != 0.0 {
                    trips.push((i, j, v));
                }
            }
        }
        Csr::from_triplets(nrows, ncols, trips)
    }

    fn assert_matrix_close(c: &Csr, dense: &[f64], n: usize) {
        let dc = c.to_dense();
        assert_eq!(dc.len(), dense.len());
        for idx in 0..dense.len() {
            assert!(
                (dc[idx] - dense[idx]).abs() < 1e-10,
                "mismatch at ({}, {}): {} vs {}",
                idx / n,
                idx % n,
                dc[idx],
                dense[idx]
            );
        }
    }

    #[test]
    fn two_pass_matches_dense() {
        let a = random_csr(17, 13, 4, 1);
        let b = random_csr(13, 11, 3, 2);
        let c = spgemm_two_pass(&a, &b);
        assert_matrix_close(&c, &dense_mm(&a, &b), 11);
        assert!(c.no_duplicate_cols());
    }

    #[test]
    fn one_pass_matches_two_pass_exactly() {
        let a = random_csr(500, 400, 5, 3);
        let b = random_csr(400, 300, 4, 4);
        let c1 = spgemm_two_pass(&a, &b);
        let c2 = spgemm_one_pass(&a, &b);
        assert_eq!(c1, c2); // identical structure AND values
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_csr(20, 20, 3, 5);
        let i = Csr::identity(20);
        let left = spgemm(&i, &a);
        let right = spgemm(&a, &i);
        assert_matrix_close(&left, &a.to_dense(), 20);
        assert_matrix_close(&right, &a.to_dense(), 20);
    }

    #[test]
    fn numeric_only_recomputes() {
        let a = random_csr(50, 40, 4, 7);
        let b = random_csr(40, 30, 3, 8);
        let mut c = spgemm(&a, &b);
        let expect = c.clone();
        // Scramble values, then recompute over the frozen pattern.
        for v in c.values_mut() {
            *v = f64::NAN;
        }
        numeric_only(&a, &b, &mut c);
        assert_eq!(c, expect);
    }

    #[test]
    fn numeric_only_with_scaled_inputs() {
        let a = random_csr(30, 30, 3, 11);
        let b = random_csr(30, 30, 3, 12);
        let mut c = spgemm(&a, &b);
        // Scale A by 2: same pattern, values double.
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 2.0;
        }
        numeric_only(&a2, &b, &mut c);
        let expect = spgemm(&a2, &b);
        assert_eq!(c.to_dense(), expect.to_dense());
    }

    #[test]
    fn empty_rows_handled() {
        let a = Csr::from_triplets(4, 3, vec![(1, 0, 2.0)]);
        let b = Csr::from_triplets(3, 2, vec![(0, 1, 3.0)]);
        let c = spgemm(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(1, 1), Some(6.0));
        assert_eq!(c.row_nnz(0), 0);
        assert_eq!(c.row_nnz(3), 0);
    }

    #[test]
    fn zero_result_when_structurally_orthogonal() {
        // A hits only column 0; B row 0 is empty.
        let a = Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 0, 2.0)]);
        let b = Csr::from_triplets(2, 2, vec![(1, 1, 5.0)]);
        let c = spgemm(&a, &b);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn associativity_on_small_chain() {
        let a = random_csr(12, 10, 3, 21);
        let b = random_csr(10, 9, 3, 22);
        let c = random_csr(9, 8, 3, 23);
        let left = spgemm(&spgemm(&a, &b), &c);
        let right = spgemm(&a, &spgemm(&b, &c));
        assert!(left.frob_diff(&right) < 1e-8);
    }

    #[test]
    fn plan_reuse_matches_fresh_products() {
        let a = random_csr(60, 50, 4, 101);
        let b = random_csr(50, 40, 3, 102);
        let mut plan = SpgemmPlan::new(&a, &b);
        assert_eq!(plan.result(), &spgemm(&a, &b));
        // Same structure, new values.
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v = -*v + 0.5;
        }
        let out = plan.execute(&a2, &b).clone();
        assert_eq!(out.to_dense(), spgemm(&a2, &b).to_dense());
    }

    #[test]
    fn kernel_selection_results_identical() {
        let a = random_csr(80, 70, 4, 201);
        let b = random_csr(70, 60, 3, 202);
        let auto = spgemm_with(SpgemmKernel::Auto, &a, &b);
        let one = spgemm_with(SpgemmKernel::OnePass, &a, &b);
        let two = spgemm_with(SpgemmKernel::TwoPass, &a, &b);
        assert_eq!(auto, one);
        assert_eq!(auto, two);
    }

    #[test]
    fn flops_bound_counts_b_row_lengths() {
        // A has entries in columns 0 and 1; bound = nnz(B_0) + nnz(B_1).
        let a = Csr::from_triplets(1, 3, vec![(0, 0, 1.0), (0, 1, 1.0)]);
        let b = Csr::from_triplets(3, 2, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0)]);
        assert_eq!(spgemm_flops_bound(&a, &b), 3);
    }

    #[test]
    fn large_parallel_consistency() {
        let a = random_csr(4000, 4000, 6, 31);
        let b = random_csr(4000, 4000, 5, 32);
        let c1 = spgemm_two_pass(&a, &b);
        let c2 = spgemm_one_pass(&a, &b);
        assert_eq!(c1, c2);
    }
}

//! Fixture tests for the `famg-lint` rules.
//!
//! Each fixture under `tests/fixtures/` is a `.rsfix` file (the extension
//! keeps rustc and the workspace walker away from them) containing both
//! violating and correctly-justified forms of one rule's trigger syntax.
//! The assertions pin exact `(line, rule)` pairs so a scanner regression
//! that shifts or drops a diagnostic fails loudly.

use famg_check::lint::lint_file;

fn fixture(name: &str) -> String {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    std::fs::read_to_string(format!("{dir}/{name}")).expect("fixture file readable")
}

/// `(line, rule-id)` pairs of the diagnostics for `src` linted as `path`.
fn findings(path: &str, src: &str) -> Vec<(usize, &'static str)> {
    lint_file(path, src)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

#[test]
fn missing_safety_comments_are_flagged_with_line_numbers() {
    let src = fixture("missing_safety.rsfix");
    let got = findings("shims/rayon/src/fixture.rs", &src);
    // Line 5: bare `unsafe { *p }` block; line 15: bare `unsafe impl Send`.
    // The commented block (10), commented impl (18), `unsafe fn` signature
    // (22) and its commented body (24) must all stay quiet.
    assert_eq!(
        got,
        vec![(5, "unsafe-safety"), (15, "unsafe-safety")],
        "diagnostics: {:?}",
        lint_file("shims/rayon/src/fixture.rs", &src)
    );
}

#[test]
fn unjustified_weak_orderings_are_flagged_with_line_numbers() {
    let src = fixture("unjustified_ordering.rsfix");
    let got = findings("crates/dist/src/fixture.rs", &src);
    // Line 6: bare Relaxed load; line 10: bare Release store. The commented
    // Acquire cluster (16-17) and the SeqCst load (22) must stay quiet.
    assert_eq!(
        got,
        vec![(6, "ordering-justified"), (10, "ordering-justified")],
        "diagnostics: {:?}",
        lint_file("crates/dist/src/fixture.rs", &src)
    );
}

#[test]
fn hash_collections_in_kernel_paths_are_flagged() {
    let src = fixture("hashmap_kernel.rsfix");
    // Under a kernel path: the bare HashMap signature (5) and constructor
    // (6) are flagged; the DETERMINISM-vouched HashSet (10, 12), the
    // BTreeMap, and the `#[cfg(test)]` module must stay quiet.
    let got = findings("crates/core/src/fixture.rs", &src);
    assert_eq!(
        got,
        vec![(5, "hashmap-kernel"), (6, "hashmap-kernel")],
        "diagnostics: {:?}",
        lint_file("crates/core/src/fixture.rs", &src)
    );
    // The same source outside a kernel crate is not the linter's business.
    assert!(findings("crates/bench/src/fixture.rs", &src).is_empty());
}

#[test]
fn wallclock_reads_outside_allowlist_are_flagged() {
    let src = fixture("wallclock_kernel.rsfix");
    // Lines 5, 8, 9 read (or name, for the `SystemTime` return type on 8)
    // the wall clock; the string literal mention and the test module must
    // stay quiet.
    let got = findings("crates/core/src/fixture.rs", &src);
    assert_eq!(
        got,
        vec![
            (5, "wallclock-kernel"),
            (8, "wallclock-kernel"),
            (9, "wallclock-kernel"),
        ],
        "diagnostics: {:?}",
        lint_file("crates/core/src/fixture.rs", &src)
    );
    // An allowlisted telemetry file may read the clock freely.
    assert!(findings("crates/bench/src/fixture.rs", &src).is_empty());
}

#[test]
fn clean_fixture_produces_no_diagnostics_anywhere() {
    let src = fixture("clean.rsfix");
    for path in [
        "crates/core/src/fixture.rs", // kernel path: strictest rule set
        "crates/dist/src/fixture.rs", // non-kernel library path
        "shims/rayon/src/fixture.rs", // shim path
    ] {
        let diags = lint_file(path, &src);
        assert!(
            diags.is_empty(),
            "unexpected diagnostics at {path}: {diags:?}"
        );
    }
}

#[test]
fn diagnostics_render_as_path_line_rule() {
    let src = fixture("missing_safety.rsfix");
    let diags = lint_file("shims/rayon/src/fixture.rs", &src);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("shims/rayon/src/fixture.rs:5: [unsafe-safety]"),
        "unexpected rendering: {rendered}"
    );
}

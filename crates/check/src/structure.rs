//! Structural (per-matrix) CSR validators.
//!
//! These operate either on a finished [`Csr`] or on raw parts, so tests
//! can probe malformed buffers that the `Csr` constructors would refuse
//! to build.

use crate::{fail, CheckResult};
use famg_sparse::transpose::transpose;
use famg_sparse::Csr;

/// Validates raw CSR buffers: row-pointer shape and monotonicity,
/// in-bounds column indices, and finite values.
///
/// This is the release-mode counterpart of the debug assertions in
/// `Csr::from_parts_unchecked`.
pub fn check_raw_parts(
    nrows: usize,
    ncols: usize,
    rowptr: &[usize],
    colidx: &[usize],
    values: &[f64],
) -> CheckResult {
    if rowptr.len() != nrows + 1 {
        return fail(
            "rowptr_len",
            format!(
                "rowptr has {} entries, want nrows+1 = {}",
                rowptr.len(),
                nrows + 1
            ),
        );
    }
    if rowptr[0] != 0 {
        return fail("rowptr_start", format!("rowptr[0] = {}, want 0", rowptr[0]));
    }
    for i in 0..nrows {
        if rowptr[i] > rowptr[i + 1] {
            return fail(
                "rowptr_monotone",
                format!(
                    "rowptr decreases at row {i}: {} > {}",
                    rowptr[i],
                    rowptr[i + 1]
                ),
            );
        }
    }
    if rowptr[nrows] != colidx.len() || colidx.len() != values.len() {
        return fail(
            "nnz_consistent",
            format!(
                "rowptr[nrows] = {}, colidx.len() = {}, values.len() = {}",
                rowptr[nrows],
                colidx.len(),
                values.len()
            ),
        );
    }
    for (k, &c) in colidx.iter().enumerate() {
        if c >= ncols {
            return fail(
                "colidx_in_bounds",
                format!("colidx[{k}] = {c} out of bounds for ncols = {ncols}"),
            );
        }
    }
    for (k, &v) in values.iter().enumerate() {
        if !v.is_finite() {
            return fail("values_finite", format!("values[{k}] = {v} is not finite"));
        }
    }
    Ok(())
}

/// Validates the buffers of a built [`Csr`]: see [`check_raw_parts`].
pub fn check_csr(a: &Csr) -> CheckResult {
    check_raw_parts(a.nrows(), a.ncols(), a.rowptr(), a.colidx(), a.values())
}

/// Checks that every row's column indices are strictly increasing
/// (sorted with no duplicates).
///
/// Not a type invariant of [`Csr`] — CF- and GS-partitioned matrices
/// deliberately reorder entries within a row — so this is only asserted
/// where the surrounding algorithm requires it (SpGEMM inputs,
/// transpose outputs, assembled operators).
pub fn check_sorted_unique(a: &Csr) -> CheckResult {
    for i in 0..a.nrows() {
        let cols = a.row_cols(i);
        for w in cols.windows(2) {
            if w[0] >= w[1] {
                let which = if w[0] == w[1] {
                    "duplicate"
                } else {
                    "unsorted"
                };
                return fail(
                    "cols_sorted_unique",
                    format!("row {i} has {which} column pair ({}, {})", w[0], w[1]),
                );
            }
        }
    }
    Ok(())
}

/// Checks that no row stores the same column twice, independent of
/// column order.
///
/// Unlike [`check_sorted_unique`] this holds for *every* assembled famg
/// operator: the fused SpGEMM/RAP kernels emit columns in first-touch
/// order (unsorted by design), but their sparse accumulators must have
/// merged duplicates.
pub fn check_no_duplicates(a: &Csr) -> CheckResult {
    let mut scratch: Vec<usize> = Vec::new();
    for i in 0..a.nrows() {
        scratch.clear();
        scratch.extend_from_slice(a.row_cols(i));
        scratch.sort_unstable();
        for w in scratch.windows(2) {
            if w[0] == w[1] {
                return fail(
                    "cols_no_duplicates",
                    format!("row {i} stores column {} twice", w[0]),
                );
            }
        }
    }
    Ok(())
}

/// Checks that every stored value is finite (no NaN/Inf).
pub fn check_finite(a: &Csr) -> CheckResult {
    for (k, &v) in a.values().iter().enumerate() {
        if !v.is_finite() {
            return fail("values_finite", format!("values[{k}] = {v} is not finite"));
        }
    }
    Ok(())
}

/// Checks that the sparsity pattern is symmetric: `(i, j)` is stored
/// iff `(j, i)` is stored (values may differ).
///
/// AMG strength graphs and Galerkin operators built from symmetric
/// problems must keep this property; losing it usually means a
/// transpose/renumbering bug.
pub fn check_symmetric_pattern(a: &Csr) -> CheckResult {
    if a.nrows() != a.ncols() {
        return fail(
            "pattern_symmetric",
            format!("matrix is {}x{}, not square", a.nrows(), a.ncols()),
        );
    }
    let at = transpose(a); // transpose emits sorted rows
    for i in 0..a.nrows() {
        let mut cols = a.row_cols(i).to_vec();
        cols.sort_unstable();
        if cols != at.row_cols(i) {
            return fail(
                "pattern_symmetric",
                format!("row {i}: pattern of A differs from pattern of A^T"),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag(n: usize) -> Csr {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Csr::from_triplets(n, n, t)
    }

    #[test]
    fn well_formed_matrix_passes_all() {
        let a = tridiag(6);
        assert!(check_csr(&a).is_ok());
        assert!(check_sorted_unique(&a).is_ok());
        assert!(check_finite(&a).is_ok());
        assert!(check_symmetric_pattern(&a).is_ok());
    }

    #[test]
    fn rejects_bad_rowptr() {
        let err = check_raw_parts(2, 2, &[0, 2, 1], &[0, 1, 0], &[1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(err.check, "rowptr_monotone");
        let err = check_raw_parts(2, 2, &[1, 1, 2], &[0, 1], &[1.0, 2.0]).unwrap_err();
        assert_eq!(err.check, "rowptr_start");
        let err = check_raw_parts(1, 2, &[0], &[], &[]).unwrap_err();
        assert_eq!(err.check, "rowptr_len");
        let err = check_raw_parts(1, 2, &[0, 3], &[0, 1], &[1.0, 2.0]).unwrap_err();
        assert_eq!(err.check, "nnz_consistent");
    }

    #[test]
    fn rejects_out_of_bounds_and_nonfinite() {
        let err = check_raw_parts(1, 2, &[0, 1], &[5], &[1.0]).unwrap_err();
        assert_eq!(err.check, "colidx_in_bounds");
        let err = check_raw_parts(1, 2, &[0, 1], &[0], &[f64::NAN]).unwrap_err();
        assert_eq!(err.check, "values_finite");
    }

    #[test]
    fn rejects_unsorted_and_duplicate_cols() {
        let mut a = tridiag(4);
        {
            let (cols, _) = a.colidx_values_mut();
            cols.swap(0, 1);
        }
        assert_eq!(
            check_sorted_unique(&a).unwrap_err().check,
            "cols_sorted_unique"
        );
        let mut b = tridiag(4);
        {
            let (cols, _) = b.colidx_values_mut();
            cols[1] = cols[0];
        }
        assert_eq!(
            check_sorted_unique(&b).unwrap_err().check,
            "cols_sorted_unique"
        );
    }

    #[test]
    fn rejects_asymmetric_pattern() {
        let a = Csr::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 5.0), (1, 1, 1.0), (2, 2, 1.0)],
        );
        assert_eq!(
            check_symmetric_pattern(&a).unwrap_err().check,
            "pattern_symmetric"
        );
    }
}

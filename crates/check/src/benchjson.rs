//! Validation and regression comparison for the `BENCH_*.json` telemetry
//! records emitted by `famg-bench` (schema in DESIGN.md §8).
//!
//! Two halves:
//!
//! * a dependency-free JSON parser ([`JsonValue::parse`]) sized for the
//!   documents the bench binaries write — strict enough to reject
//!   malformed output, permissive on whitespace;
//! * the schema contract: [`validate_bench`] checks a document against
//!   schema v1, and [`compare_bench`] gates a fresh run against a
//!   committed baseline on the *machine-independent* fields (iterations,
//!   complexities, flop/comm counters). Wall-clock fields are
//!   deliberately not gated — they vary with the host — so the committed
//!   baselines stay meaningful across machines.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; member order preserved, duplicate keys rejected.
    Obj(Vec<(String, JsonValue)>),
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn str_(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn bool_(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| JsonValue::Null),
            Some(b't') => self.eat("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.pos += 1; // {
        let mut members: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected `\"`"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not expected in bench output;
                            // map them to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|chunk| std::str::from_utf8(chunk).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// The schema version [`validate_bench`] accepts.
pub const BENCH_SCHEMA_VERSION: f64 = 1.0;

const SETUP_BUCKETS: &[&str] = &["strength_coarsen", "interp", "rap", "setup_etc", "total"];
const SOLVE_BUCKETS: &[&str] = &["gs", "spmv", "blas1", "solve_etc", "total"];

fn want_num(doc: &JsonValue, path: &str, obj: &str, key: &str) -> Result<f64, String> {
    let v = doc
        .get(obj)
        .ok_or_else(|| format!("{path}: missing `{obj}`"))?
        .get(key)
        .ok_or_else(|| format!("{path}: missing `{obj}.{key}`"))?
        .num()
        .ok_or_else(|| format!("{path}: `{obj}.{key}` is not a number"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!(
            "{path}: `{obj}.{key}` = {v} is not finite and >= 0"
        ));
    }
    Ok(v)
}

/// Checks `doc` against BENCH schema v1. `path` labels error messages.
pub fn validate_bench(doc: &JsonValue, path: &str) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(JsonValue::num)
        .ok_or_else(|| format!("{path}: missing numeric `schema_version`"))?;
    if version != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "{path}: schema_version {version} unsupported (expected {BENCH_SCHEMA_VERSION})"
        ));
    }
    let bench = doc
        .get("bench")
        .and_then(JsonValue::str_)
        .ok_or_else(|| format!("{path}: missing string `bench`"))?
        .to_string();
    let mode = doc
        .get("mode")
        .and_then(JsonValue::str_)
        .ok_or_else(|| format!("{path}: missing string `mode`"))?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("{path}: mode `{mode}` is not `smoke` or `full`"));
    }
    for key in ["threads", "ranks"] {
        let v = doc
            .get(key)
            .and_then(JsonValue::num)
            .ok_or_else(|| format!("{path}: missing numeric `{key}`"))?;
        if v < 1.0 || v.fract() != 0.0 {
            return Err(format!("{path}: `{key}` = {v} is not a positive integer"));
        }
    }
    for key in ["n", "nnz"] {
        want_num(doc, path, "problem", key)?;
    }
    for key in SETUP_BUCKETS {
        want_num(doc, path, "setup_seconds", key)?;
    }
    for key in SOLVE_BUCKETS {
        want_num(doc, path, "solve_seconds", key)?;
    }
    want_num(doc, path, "solve", "iterations")?;
    want_num(doc, path, "solve", "final_relres")?;
    doc.get("solve")
        .and_then(|s| s.get("converged"))
        .and_then(JsonValue::bool_)
        .ok_or_else(|| format!("{path}: missing boolean `solve.converged`"))?;
    for key in ["operator", "grid", "levels"] {
        want_num(doc, path, "complexity", key)?;
    }
    for key in ["flops", "comm_bytes", "comm_messages"] {
        want_num(doc, path, "counters", key)?;
    }
    match doc.get("extra") {
        Some(JsonValue::Obj(_)) => {}
        _ => return Err(format!("{path}: missing object `extra`")),
    }
    // Bench-specific contract: comm_volume records must carry the
    // exposed-halo-wait telemetry, and communication overlap must leave a
    // strictly smaller fraction of the halo wait exposed than the
    // synchronous path (fractions are same-run ratios, robust to host
    // scheduler noise; the absolute `*_seconds` fields are informational).
    // Both fractions are 0 when the profiler is compiled out — accepted
    // as "no signal".
    if bench == "comm_volume" {
        let overlap = want_num(doc, path, "extra", "exposed_wait_overlap_fraction")?;
        let sync = want_num(doc, path, "extra", "exposed_wait_sync_fraction")?;
        for (key, v) in [("overlap", overlap), ("sync", sync)] {
            if v > 1.0 {
                return Err(format!(
                    "{path}: `extra.exposed_wait_{key}_fraction` = {v} is not a fraction"
                ));
            }
        }
        if !(overlap == 0.0 && sync == 0.0) && overlap >= sync {
            return Err(format!(
                "{path}: `extra.exposed_wait_overlap_fraction` = {overlap} is not \
                 strictly below `extra.exposed_wait_sync_fraction` = {sync}"
            ));
        }
    }
    // Bench-specific contract: multi_rhs records must show the batched
    // path actually amortizing work — per-RHS time at k = 8 strictly
    // better than solo solves (a same-run ratio, robust to host speed) —
    // and the halo message count must be *exactly* k-independent: a k=8
    // solve driven to the same iteration count sends the same number of
    // messages as k=1.
    if bench == "multi_rhs" {
        let speedup = want_num(doc, path, "extra", "per_rhs_speedup_k8")?;
        if speedup <= 1.0 {
            return Err(format!(
                "{path}: `extra.per_rhs_speedup_k8` = {speedup} is not strictly above 1.0 \
                 (batching must beat solo per-RHS)"
            ));
        }
        let m1 = want_num(doc, path, "extra", "halo_messages_k1")?;
        let m8 = want_num(doc, path, "extra", "halo_messages_k8")?;
        if m1 != m8 {
            return Err(format!(
                "{path}: `extra.halo_messages_k8` = {m8} differs from \
                 `extra.halo_messages_k1` = {m1} (message count must be k-independent)"
            ));
        }
    }
    // Bucket sums must not exceed their recorded totals (self-time
    // attribution can only lose clock to unattributed gaps, never invent
    // it; small float slack for the JSON round-trip).
    for (obj, buckets) in [
        ("setup_seconds", SETUP_BUCKETS),
        ("solve_seconds", SOLVE_BUCKETS),
    ] {
        let total = want_num(doc, path, obj, "total")?;
        let sum: f64 = buckets[..buckets.len() - 1]
            .iter()
            .map(|k| want_num(doc, path, obj, k).unwrap_or(0.0))
            .sum();
        if sum > total + 1e-9 + total * 1e-9 {
            return Err(format!(
                "{path}: `{obj}` buckets sum to {sum} > total {total}"
            ));
        }
    }
    Ok(())
}

/// Fields gated by [`compare_bench`]: machine-independent measures where
/// growth past the allowed ratio means the algorithm regressed, not the
/// host. `(object, key, floor)` — differences below `floor` are ignored
/// so tiny baselines don't produce giant ratios.
const GATED: &[(&str, &str, f64)] = &[
    ("solve", "iterations", 2.0),
    ("complexity", "operator", 0.05),
    ("complexity", "grid", 0.05),
    ("complexity", "levels", 1.0),
    ("counters", "flops", 10_000.0),
    ("counters", "comm_bytes", 10_000.0),
    ("counters", "comm_messages", 100.0),
];

/// Compares a fresh run against a committed baseline. Fails when any
/// gated field grew beyond `max_ratio` × baseline (after the per-field
/// absolute floor). Returns one description line per gated field.
///
/// Both documents must already pass [`validate_bench`], and must record
/// the same `bench` name, mode, and problem shape — comparing different
/// experiments is reported as an error, not a regression.
pub fn compare_bench(
    current: &JsonValue,
    baseline: &JsonValue,
    max_ratio: f64,
) -> Result<Vec<String>, String> {
    for key in ["bench", "mode"] {
        let c = current.get(key).and_then(JsonValue::str_);
        let b = baseline.get(key).and_then(JsonValue::str_);
        if c != b {
            return Err(format!("`{key}` differs: current {c:?} vs baseline {b:?}"));
        }
    }
    for key in ["n", "nnz"] {
        let c = want_num(current, "current", "problem", key)?;
        let b = want_num(baseline, "baseline", "problem", key)?;
        if c != b {
            return Err(format!(
                "problem shape differs: `problem.{key}` current {c} vs baseline {b}"
            ));
        }
    }
    let mut lines = Vec::new();
    for &(obj, key, floor) in GATED {
        let c = want_num(current, "current", obj, key)?;
        let b = want_num(baseline, "baseline", obj, key)?;
        let grew_past_floor = c > b + floor;
        let ratio = if b > 0.0 { c / b } else { f64::INFINITY };
        if grew_past_floor && ratio > max_ratio {
            return Err(format!(
                "`{obj}.{key}` regressed: {c} vs baseline {b} ({ratio:.2}x > {max_ratio}x)"
            ));
        }
        lines.push(format!(
            "{obj}.{key}: {c} vs baseline {b} ({})",
            if b > 0.0 {
                format!("{ratio:.2}x")
            } else {
                "no baseline signal".to_string()
            }
        ));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(flops: u64, iterations: u64) -> String {
        format!(
            r#"{{
  "schema_version": 1,
  "bench": "thread_scaling",
  "mode": "smoke",
  "threads": 4,
  "ranks": 1,
  "problem": {{"n": 100, "nnz": 460}},
  "setup_seconds": {{"strength_coarsen": 0.01, "interp": 0.02, "rap": 0.03, "setup_etc": 0.005, "total": 0.07}},
  "solve_seconds": {{"gs": 0.04, "spmv": 0.02, "blas1": 0.001, "solve_etc": 0.002, "total": 0.063}},
  "solve": {{"iterations": {iterations}, "final_relres": 1.5e-9, "converged": true}},
  "complexity": {{"operator": 2.4, "grid": 1.5, "levels": 4}},
  "counters": {{"flops": {flops}, "comm_bytes": 0, "comm_messages": 0}},
  "extra": {{"note": "test é"}}
}}"#
        )
    }

    #[test]
    fn parser_round_trips_scalars_and_nesting() {
        let doc = JsonValue::parse(r#"{"a": [1, -2.5e3, "x\n", true, null], "b": {}}"#).unwrap();
        assert_eq!(
            doc.get("a").unwrap(),
            &JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(-2500.0),
                JsonValue::Str("x\n".to_string()),
                JsonValue::Bool(true),
                JsonValue::Null,
            ])
        );
        assert_eq!(doc.get("b").unwrap(), &JsonValue::Obj(vec![]));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": 1,}",
            "{\"a\": 1} extra",
            "{\"a\": 1, \"a\": 2}",
            "\"unterminated",
            "nul",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn parser_handles_unicode_strings() {
        let doc = JsonValue::parse(r#""café – ünïcode""#).unwrap();
        assert_eq!(doc.str_().unwrap(), "café – ünïcode");
    }

    #[test]
    fn validate_accepts_schema_v1() {
        let doc = JsonValue::parse(&sample(1000, 8)).unwrap();
        validate_bench(&doc, "test").unwrap();
    }

    fn comm_volume_sample(overlap_frac: f64, sync_frac: f64) -> String {
        sample(1000, 8)
            .replace(
                "\"bench\": \"thread_scaling\"",
                "\"bench\": \"comm_volume\"",
            )
            .replace(
                "\"extra\": {\"note\": \"test é\"}",
                &format!(
                    "\"extra\": {{\"exposed_wait_overlap_fraction\": {overlap_frac}, \
                     \"exposed_wait_sync_fraction\": {sync_frac}}}"
                ),
            )
    }

    #[test]
    fn validate_gates_comm_volume_exposed_wait() {
        // Overlap strictly below sync: ok.
        let doc = JsonValue::parse(&comm_volume_sample(0.2, 0.97)).unwrap();
        validate_bench(&doc, "test").unwrap();
        // Both zero (profiler compiled out): ok.
        let doc = JsonValue::parse(&comm_volume_sample(0.0, 0.0)).unwrap();
        validate_bench(&doc, "test").unwrap();
        // Overlap not below sync: rejected.
        let doc = JsonValue::parse(&comm_volume_sample(0.9, 0.9)).unwrap();
        let err = validate_bench(&doc, "test").unwrap_err();
        assert!(err.contains("exposed_wait_overlap_fraction"), "got: {err}");
        // Not a fraction: rejected.
        let doc = JsonValue::parse(&comm_volume_sample(0.2, 1.5)).unwrap();
        let err = validate_bench(&doc, "test").unwrap_err();
        assert!(err.contains("not a fraction"), "got: {err}");
        // Missing the telemetry entirely: rejected for comm_volume...
        let missing = sample(1000, 8).replace(
            "\"bench\": \"thread_scaling\"",
            "\"bench\": \"comm_volume\"",
        );
        let doc = JsonValue::parse(&missing).unwrap();
        let err = validate_bench(&doc, "test").unwrap_err();
        assert!(err.contains("exposed_wait_overlap_fraction"), "got: {err}");
        // ...but other benches carry no such obligation.
        let doc = JsonValue::parse(&sample(1000, 8)).unwrap();
        validate_bench(&doc, "test").unwrap();
    }

    fn multi_rhs_sample(speedup: f64, m1: u64, m8: u64) -> String {
        sample(1000, 8)
            .replace("\"bench\": \"thread_scaling\"", "\"bench\": \"multi_rhs\"")
            .replace(
                "\"extra\": {\"note\": \"test é\"}",
                &format!(
                    "\"extra\": {{\"per_rhs_speedup_k8\": {speedup}, \
                     \"halo_messages_k1\": {m1}, \"halo_messages_k8\": {m8}}}"
                ),
            )
    }

    #[test]
    fn validate_gates_multi_rhs_speedup_and_messages() {
        // Speedup above 1 and identical message counts: ok.
        let doc = JsonValue::parse(&multi_rhs_sample(1.6, 840, 840)).unwrap();
        validate_bench(&doc, "test").unwrap();
        // Per-RHS speedup at or below 1: batching lost, rejected.
        let doc = JsonValue::parse(&multi_rhs_sample(1.0, 840, 840)).unwrap();
        let err = validate_bench(&doc, "test").unwrap_err();
        assert!(err.contains("per_rhs_speedup_k8"), "got: {err}");
        // Message count grew with k: amortization broken, rejected.
        let doc = JsonValue::parse(&multi_rhs_sample(1.6, 840, 6720)).unwrap();
        let err = validate_bench(&doc, "test").unwrap_err();
        assert!(err.contains("halo_messages_k8"), "got: {err}");
        // Missing the telemetry entirely: rejected for multi_rhs.
        let missing =
            sample(1000, 8).replace("\"bench\": \"thread_scaling\"", "\"bench\": \"multi_rhs\"");
        let doc = JsonValue::parse(&missing).unwrap();
        let err = validate_bench(&doc, "test").unwrap_err();
        assert!(err.contains("per_rhs_speedup_k8"), "got: {err}");
    }

    #[test]
    fn validate_rejects_missing_and_mistyped_fields() {
        let good = sample(1000, 8);
        for (from, to, want) in [
            (
                "\"schema_version\": 1",
                "\"schema_version\": 2",
                "schema_version",
            ),
            ("\"mode\": \"smoke\"", "\"mode\": \"quick\"", "mode"),
            ("\"converged\": true", "\"converged\": 1", "converged"),
            ("\"flops\": 1000", "\"flopz\": 1000", "flops"),
            ("\"total\": 0.07", "\"total\": 0.0001", "sum"),
        ] {
            let bad = good.replace(from, to);
            assert_ne!(bad, good, "replacement `{from}` did not apply");
            let doc = JsonValue::parse(&bad).unwrap();
            let err = validate_bench(&doc, "test").unwrap_err();
            assert!(
                err.contains(want),
                "error `{err}` does not mention `{want}`"
            );
        }
    }

    #[test]
    fn compare_passes_within_ratio_and_fails_past_it() {
        let base = JsonValue::parse(&sample(1_000_000, 10)).unwrap();
        let same = JsonValue::parse(&sample(1_100_000, 11)).unwrap();
        let lines = compare_bench(&same, &base, 1.25).unwrap();
        assert!(lines.iter().any(|l| l.contains("counters.flops")));

        let blown = JsonValue::parse(&sample(1_400_000, 10)).unwrap();
        let err = compare_bench(&blown, &base, 1.25).unwrap_err();
        assert!(err.contains("counters.flops"), "got: {err}");

        let its = JsonValue::parse(&sample(1_000_000, 16)).unwrap();
        let err = compare_bench(&its, &base, 1.25).unwrap_err();
        assert!(err.contains("solve.iterations"), "got: {err}");
    }

    #[test]
    fn compare_ignores_sub_floor_noise_on_tiny_baselines() {
        // 0 -> 60 messages is a huge ratio but below the absolute floor;
        // serial benches legitimately record 0 comm.
        let base = JsonValue::parse(&sample(1_000_000, 10)).unwrap();
        let cur_src =
            sample(1_000_000, 10).replace("\"comm_messages\": 0", "\"comm_messages\": 60");
        let cur = JsonValue::parse(&cur_src).unwrap();
        compare_bench(&cur, &base, 1.25).unwrap();
    }

    #[test]
    fn compare_rejects_mismatched_experiments() {
        let base = JsonValue::parse(&sample(1_000_000, 10)).unwrap();
        let other_src = sample(1_000_000, 10).replace("\"n\": 100", "\"n\": 200");
        let other = JsonValue::parse(&other_src).unwrap();
        assert!(compare_bench(&other, &base, 1.25).is_err());
    }
}

//! Per-rank validators for distributed (ParCSR) matrix parts.
//!
//! `famg-check` cannot depend on `famg-dist` (which depends on
//! `famg-core`, which optionally depends on this crate), so the checks
//! take the raw parts of a ParCSR matrix instead of the type itself.

use crate::{fail, structure::check_csr, CheckResult, Violation};
use famg_sparse::Csr;

/// Borrowed view of one rank's ParCSR matrix.
///
/// Rows and columns are partitioned independently: for a square level
/// operator the owned column range equals the owned row range, but for
/// interpolation/restriction it is the rank's slice of the *other*
/// grid's partition.
pub struct ParCsrParts<'a> {
    /// First owned global row (inclusive).
    pub row_start: usize,
    /// Last owned global row (exclusive).
    pub row_end: usize,
    /// First owned global column (inclusive).
    pub col_start: usize,
    /// Last owned global column (exclusive).
    pub col_end: usize,
    /// Global column count.
    pub global_cols: usize,
    /// Owned-column block, local indices, `col_end - col_start` columns.
    pub diag: &'a Csr,
    /// Off-owned block, columns compressed through `colmap`.
    pub offd: &'a Csr,
    /// Sorted global column ids for `offd`'s compressed columns.
    pub colmap: &'a [usize],
}

/// Validates one rank's ParCSR parts: block shapes, structural CSR
/// invariants of both blocks, and the column map (sorted, unique, only
/// non-owned global columns, in global bounds).
pub fn check_parcsr(p: &ParCsrParts<'_>) -> CheckResult {
    if p.row_start > p.row_end {
        return fail(
            "parcsr_row_range",
            format!("row_start {} > row_end {}", p.row_start, p.row_end),
        );
    }
    if p.col_start > p.col_end || p.col_end > p.global_cols {
        return fail(
            "parcsr_col_range",
            format!(
                "owned column range [{}, {}) invalid for {} global columns",
                p.col_start, p.col_end, p.global_cols
            ),
        );
    }
    let nlocal = p.row_end - p.row_start;
    if p.diag.nrows() != nlocal || p.offd.nrows() != nlocal {
        return fail(
            "parcsr_block_rows",
            format!(
                "diag has {} rows, offd has {} rows, want {nlocal}",
                p.diag.nrows(),
                p.offd.nrows()
            ),
        );
    }
    let ncols_owned = p.col_end - p.col_start;
    if p.diag.ncols() != ncols_owned {
        return fail(
            "parcsr_diag_cols",
            format!("diag has {} columns, want {ncols_owned}", p.diag.ncols()),
        );
    }
    if p.offd.ncols() != p.colmap.len() {
        return fail(
            "parcsr_colmap_len",
            format!(
                "offd has {} columns but colmap has {} entries",
                p.offd.ncols(),
                p.colmap.len()
            ),
        );
    }
    let tag = |block: &str, v: Violation| -> CheckResult {
        fail("parcsr_block_structure", format!("{block}: {v}"))
    };
    if let Err(v) = check_csr(p.diag) {
        return tag("diag", v);
    }
    if let Err(v) = check_csr(p.offd) {
        return tag("offd", v);
    }
    for (k, &g) in p.colmap.iter().enumerate() {
        if g >= p.global_cols {
            return fail(
                "parcsr_colmap_bounds",
                format!(
                    "colmap[{k}] = {g} out of bounds for {} global columns",
                    p.global_cols
                ),
            );
        }
        if (p.col_start..p.col_end).contains(&g) {
            return fail(
                "parcsr_colmap_owned",
                format!(
                    "colmap[{k}] = {g} lies in the owned range [{}, {})",
                    p.col_start, p.col_end
                ),
            );
        }
        if k > 0 && p.colmap[k - 1] >= g {
            return fail(
                "parcsr_colmap_sorted",
                format!(
                    "colmap not strictly increasing at {k}: {} >= {g}",
                    p.colmap[k - 1]
                ),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts() -> (Csr, Csr, Vec<usize>) {
        // Rank owning global rows [2, 4) of a 6-column matrix.
        let diag = Csr::from_triplets(2, 2, vec![(0, 0, 2.0), (0, 1, -1.0), (1, 1, 2.0)]);
        let offd = Csr::from_triplets(2, 2, vec![(0, 0, -1.0), (1, 1, -1.0)]);
        (diag, offd, vec![1, 4])
    }

    #[test]
    fn valid_parts_pass() {
        let (diag, offd, colmap) = parts();
        let p = ParCsrParts {
            row_start: 2,
            row_end: 4,
            col_start: 2,
            col_end: 4,
            global_cols: 6,
            diag: &diag,
            offd: &offd,
            colmap: &colmap,
        };
        assert!(check_parcsr(&p).is_ok());
    }

    #[test]
    fn rectangular_parts_pass() {
        // Interpolation-shaped block: 3 local fine rows, 1 owned coarse
        // column (global column 1 of 3), one remote coarse column.
        let diag = Csr::from_triplets(3, 1, vec![(0, 0, 1.0), (1, 0, 0.5)]);
        let offd = Csr::from_triplets(3, 1, vec![(1, 0, 0.5), (2, 0, 1.0)]);
        let p = ParCsrParts {
            row_start: 4,
            row_end: 7,
            col_start: 1,
            col_end: 2,
            global_cols: 3,
            diag: &diag,
            offd: &offd,
            colmap: &[2],
        };
        assert!(check_parcsr(&p).is_ok());
    }

    #[test]
    fn rejects_bad_colmap() {
        let (diag, offd, _) = parts();
        for (colmap, want) in [
            (vec![4, 1], "parcsr_colmap_sorted"),
            (vec![1, 9], "parcsr_colmap_bounds"),
            (vec![1, 2], "parcsr_colmap_owned"),
            (vec![1], "parcsr_colmap_len"),
        ] {
            let p = ParCsrParts {
                row_start: 2,
                row_end: 4,
                col_start: 2,
                col_end: 4,
                global_cols: 6,
                diag: &diag,
                offd: &offd,
                colmap: &colmap,
            };
            assert_eq!(check_parcsr(&p).unwrap_err().check, want, "case {colmap:?}");
        }
    }

    #[test]
    fn rejects_corrupt_block_and_bad_col_range() {
        let (diag, mut offd, colmap) = parts();
        offd.values_mut()[0] = f64::INFINITY;
        let p = ParCsrParts {
            row_start: 2,
            row_end: 4,
            col_start: 2,
            col_end: 4,
            global_cols: 6,
            diag: &diag,
            offd: &offd,
            colmap: &colmap,
        };
        assert_eq!(
            check_parcsr(&p).unwrap_err().check,
            "parcsr_block_structure"
        );
        let (diag, offd, colmap) = parts();
        let p = ParCsrParts {
            row_start: 2,
            row_end: 4,
            col_start: 2,
            col_end: 9,
            global_cols: 6,
            diag: &diag,
            offd: &offd,
            colmap: &colmap,
        };
        assert_eq!(check_parcsr(&p).unwrap_err().check, "parcsr_col_range");
    }
}

//! Workspace source auditor; see [`famg_check::lint`] for the rules.
//!
//! Usage: `cargo run -q -p famg-check --bin famg-lint [--format json|text]
//! [workspace-root]` (default root: the current directory, default format:
//! text). Text mode prints one `path:line: [rule] message` diagnostic per
//! finding; `--format json` emits the shared `famg-diag-v1` document (see
//! [`famg_check::diag::to_json`]) so findings are machine-readable
//! alongside the `BENCH_*.json` telemetry. Exits non-zero if there are any
//! findings — wired into `scripts/check.sh` as the `==> famg-lint` stage.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = ".".to_string();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("famg-lint: unknown format {other:?} (expected json|text)");
                    return ExitCode::from(2);
                }
            },
            _ => root = arg,
        }
    }
    let diags = match famg_check::lint::lint_workspace(Path::new(&root)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("famg-lint: failed to scan {root}: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", famg_check::diag::to_json("famg-lint", &diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if diags.is_empty() {
        eprintln!("famg-lint: clean");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!("famg-lint: {} finding(s)", diags.len());
    ExitCode::FAILURE
}

//! Workspace source auditor; see [`famg_check::lint`] for the rules.
//!
//! Usage: `cargo run -q -p famg-check --bin famg-lint [workspace-root]`
//! (default root: the current directory). Prints one `path:line: [rule]
//! message` diagnostic per finding and exits non-zero if there are any —
//! wired into `scripts/check.sh` as the `==> famg-lint` stage.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let diags = match famg_check::lint::lint_workspace(Path::new(&root)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("famg-lint: failed to scan {root}: {e}");
            return ExitCode::from(2);
        }
    };
    if diags.is_empty() {
        eprintln!("famg-lint: clean");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!("famg-lint: {} finding(s)", diags.len());
    ExitCode::FAILURE
}

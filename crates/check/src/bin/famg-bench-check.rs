//! CI gate for the `BENCH_*.json` telemetry records (DESIGN.md §8).
//!
//! ```text
//! famg-bench-check <current.json> [<baseline.json>] [--max-ratio 1.25]
//! ```
//!
//! Validates `current.json` against BENCH schema v1; with a baseline,
//! additionally fails if any machine-independent gated field (iteration
//! count, complexities, flop/comm counters) regressed past the ratio.
//! Exit status is the check result, so `scripts/check.sh` can chain it.

use famg_check::benchjson::{compare_bench, validate_bench, JsonValue};
use std::process::ExitCode;

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    validate_bench(&doc, path)?;
    Ok(doc)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_ratio: f64 = args
        .iter()
        .position(|a| a == "--max-ratio")
        .and_then(|i| args.get(i + 1))
        .map_or(Ok(1.25), |v| {
            v.parse().map_err(|_| format!("bad --max-ratio `{v}`"))
        })?;
    let files: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && (i == 0 || args[i - 1] != "--max-ratio"))
        .map(|(_, a)| a)
        .collect();
    let (current_path, baseline_path) = match files.as_slice() {
        [c] => (*c, None),
        [c, b] => (*c, Some(*b)),
        _ => {
            return Err(
                "usage: famg-bench-check <current.json> [<baseline.json>] [--max-ratio 1.25]"
                    .to_string(),
            )
        }
    };

    let current = load(current_path)?;
    println!("{current_path}: schema v1 ok");
    if let Some(bpath) = baseline_path {
        let baseline = load(bpath)?;
        let lines = compare_bench(&current, &baseline, max_ratio)?;
        for line in lines {
            println!("  {line}");
        }
        println!("{current_path}: within {max_ratio}x of {bpath}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("famg-bench-check: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `famg-lint`: a lexer-level source auditor for the repo's concurrency and
//! determinism conventions (no `syn`, no AST — the workspace is hermetic).
//!
//! The linter scans every `.rs` file under `crates/*/src` and `shims/*/src`
//! and enforces four rules (see [`Rule`]):
//!
//! * **`unsafe-safety`** — every `unsafe {` block and `unsafe impl` must be
//!   preceded by a `// SAFETY:` comment (same line or the comment block
//!   immediately above). `unsafe fn` declarations are exempt: the workspace
//!   denies `unsafe_op_in_unsafe_fn`, so their bodies contain explicit
//!   blocks that carry their own justification.
//! * **`ordering-justified`** — every non-`SeqCst` atomic ordering
//!   (`Relaxed`, `Acquire`, `Release`, `AcqRel`) must carry a
//!   `// ORDERING:` comment explaining why the weaker ordering is sound.
//!   One comment covers a contiguous cluster of ordering lines.
//! * **`hashmap-kernel`** — `HashMap`/`HashSet` must not appear in numeric
//!   kernel modules (`crates/core`, `crates/sparse`, `crates/krylov`):
//!   their iteration order is nondeterministic, which breaks the bitwise
//!   determinism contract. A `// DETERMINISM:` comment can vouch for a use
//!   that provably never iterates.
//! * **`wallclock-kernel`** — `Instant::now`/`SystemTime` must not appear
//!   in kernel code outside the sanctioned bench/telemetry allowlist
//!   ([`WALLCLOCK_ALLOWLIST`]); timing reads in compute paths are a
//!   determinism and reproducibility hazard.
//!
//! Code inside `#[cfg(test)]`-gated regions and `cfg(test)` modules is
//! exempt from all rules; so is everything outside `src/` (integration
//! tests, benches, fixtures — the latter use a `.rsfix` extension so
//! neither cargo nor this scanner picks them up).

use std::path::{Path, PathBuf};

pub use crate::diag::Diagnostic;

/// Which audit rule produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` block or impl without an adjacent `// SAFETY:` comment.
    UnsafeSafety,
    /// Weaker-than-SeqCst atomic ordering without `// ORDERING:`.
    OrderingJustified,
    /// `HashMap`/`HashSet` in a numeric kernel module.
    HashMapKernel,
    /// `Instant::now`/`SystemTime` outside the bench/telemetry allowlist.
    WallclockKernel,
}

impl Rule {
    /// Stable diagnostic id, printed in brackets.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnsafeSafety => "unsafe-safety",
            Rule::OrderingJustified => "ordering-justified",
            Rule::HashMapKernel => "hashmap-kernel",
            Rule::WallclockKernel => "wallclock-kernel",
        }
    }
}

/// Files allowed to read the wall clock: benchmark infrastructure and the
/// per-level setup/solve telemetry added alongside the kernels. Grow this
/// list only for measurement code, never for compute paths.
pub const WALLCLOCK_ALLOWLIST: &[&str] = &[
    // Benchmark crates: measuring wall time is their purpose.
    "crates/bench/",
    "shims/criterion/",
    // The span profiler owns all setup/solve timing; kernels emit spans
    // through its zero-cost API instead of reading the clock themselves.
    "crates/prof/",
    // The simulated-MPI runtime times its own blocking windows (comm_time)
    // at the send/recv choke points.
    "crates/dist/src/comm.rs",
];

/// Crates whose `src/` trees count as numeric kernels for the
/// `hashmap-kernel` rule.
const KERNEL_CRATES: &[&str] = &["crates/core/src", "crates/sparse/src", "crates/krylov/src"];

/// One source line split into its code text (strings blanked) and its
/// comment text.
#[derive(Debug, Default, Clone)]
struct Line {
    code: String,
    comment: String,
}

/// Lexer state carried across lines.
enum Mode {
    Normal,
    /// Block comment with nesting depth (Rust block comments nest).
    Block(u32),
    Str,
    RawStr(u32),
}

/// Splits source into per-line (code, comment) pairs. String and char
/// literal *contents* are blanked so tokens inside them never match rules;
/// comment text (line and block, doc included) is collected separately.
fn scan(src: &str) -> Vec<Line> {
    let mut out: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut mode = Mode::Normal;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment ends at the newline; every other mode carries.
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // Line comment: consume to end of line into comment text.
                    while i < chars.len() && chars[i] != '\n' {
                        cur.comment.push(chars[i]);
                        i += 1;
                    }
                    continue;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    i += 2;
                    continue;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Str;
                } else if c == 'r' && (next == Some('"') || next == Some('#')) {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        cur.code.push('r');
                        cur.code.push('"');
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                    cur.code.push(c);
                } else if c == '\'' {
                    // Char literal vs. lifetime: a char literal closes with
                    // a quote within a couple of characters (or starts with
                    // a backslash escape); a lifetime never does.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        // Blank the literal's content, keep the quotes.
                        cur.code.push('\'');
                        i += 1;
                        while i < chars.len() && chars[i] != '\'' {
                            if chars[i] == '\\' {
                                i += 1; // skip the escaped character
                            }
                            cur.code.push(' ');
                            i += 1;
                        }
                        if i < chars.len() {
                            cur.code.push('\'');
                        }
                    } else {
                        cur.code.push('\''); // lifetime tick
                    }
                } else {
                    cur.code.push(c);
                }
            }
            Mode::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                    continue;
                } else if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Normal
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                cur.comment.push(c);
            }
            Mode::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    i += 2; // skip the escaped character (possibly a quote)
                    continue;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Normal;
                } else {
                    cur.code.push(' ');
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    // Close only on `"` followed by exactly `hashes` hashes.
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        cur.code.push('"');
                        mode = Mode::Normal;
                        i = j;
                        continue;
                    }
                }
                cur.code.push(' ');
            }
        }
        i += 1;
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        out.push(cur);
    }
    out
}

/// Marks lines covered by a `#[cfg(test)]`-gated item (attribute line
/// through the item's closing brace, or through `;` for braceless items).
fn test_region_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        let gated = code.contains("cfg(test)") || code.contains("cfg(all(test");
        if !gated {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            if !opened && lines[j].code.contains(';') {
                break; // attribute on a braceless item (`mod x;`, `use ...;`)
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// True if `code` contains `word` delimited by non-identifier characters.
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// The first code token following the occurrence of `unsafe` at `pos` on
/// line `i`, looking across following lines if the line ends.
fn token_after_unsafe(lines: &[Line], i: usize, pos: usize) -> String {
    let mut tok = String::new();
    let mut row = i;
    let mut rest: &str = &lines[i].code[pos + "unsafe".len()..];
    loop {
        for c in rest.chars() {
            if c.is_whitespace() {
                if tok.is_empty() {
                    continue;
                }
                return tok;
            }
            if c.is_alphanumeric() || c == '_' {
                tok.push(c);
            } else {
                if tok.is_empty() {
                    tok.push(c);
                }
                return tok;
            }
        }
        if !tok.is_empty() {
            return tok;
        }
        row += 1;
        if row >= lines.len() {
            return tok;
        }
        rest = &lines[row].code;
    }
}

/// Does the comment block adjacent to line `i` contain `marker`? Checks the
/// line itself, then walks upward through comment-only lines (and, when
/// `through` matches, code lines that are part of the same cluster).
fn justified(lines: &[Line], i: usize, marker: &str, through: impl Fn(&str) -> bool) -> bool {
    if lines[i].comment.contains(marker) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.comment.contains(marker) {
            return true;
        }
        let code_blank = l.code.trim().is_empty();
        if code_blank && !l.comment.is_empty() {
            continue; // comment-only line: keep walking the block
        }
        if !code_blank && through(&l.code) {
            continue; // same-cluster code line (e.g. another Ordering:: use)
        }
        return false;
    }
    false
}

const WEAK_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

fn is_kernel_path(path: &str) -> bool {
    KERNEL_CRATES.iter().any(|k| path.contains(k))
}

fn wallclock_allowed(path: &str) -> bool {
    WALLCLOCK_ALLOWLIST.iter().any(|a| path.contains(a))
}

/// Lints one file's source. `path` is used for path-scoped rules and
/// diagnostics; forward slashes are expected (the workspace walker
/// normalizes them).
pub fn lint_file(path: &str, src: &str) -> Vec<Diagnostic> {
    let lines = scan(src);
    let in_test = test_region_mask(&lines);
    let mut out = Vec::new();
    let diag = |line: usize, rule: Rule, message: String| Diagnostic {
        path: path.to_string(),
        line: line + 1,
        rule: rule.id(),
        message,
    };

    for (i, l) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }

        // unsafe-safety: `unsafe {` and `unsafe impl` need a SAFETY comment.
        if has_word(&l.code, "unsafe") {
            let pos = l.code.find("unsafe").unwrap_or(0);
            let next = token_after_unsafe(&lines, i, pos);
            let needs_comment = next == "{" || next == "impl";
            if needs_comment && !justified(&lines, i, "SAFETY:", |_| false) {
                out.push(diag(
                    i,
                    Rule::UnsafeSafety,
                    "`unsafe` block without an immediately preceding `// SAFETY:` comment \
                     stating the invariant that makes it sound"
                        .to_string(),
                ));
            }
        }

        // ordering-justified: weaker-than-SeqCst orderings need `ORDERING:`.
        if let Some(ord) = WEAK_ORDERINGS.iter().find(|o| l.code.contains(*o)) {
            let cluster = |code: &str| code.contains("Ordering::");
            if !justified(&lines, i, "ORDERING:", cluster) {
                out.push(diag(
                    i,
                    Rule::OrderingJustified,
                    format!(
                        "`{ord}` without an `// ORDERING:` comment justifying the \
                         relaxation (what pairs with it, or why no ordering is needed)"
                    ),
                ));
            }
        }

        // hashmap-kernel: hash collections are banned in numeric kernels.
        if is_kernel_path(path)
            && (has_word(&l.code, "HashMap") || has_word(&l.code, "HashSet"))
            && !justified(&lines, i, "DETERMINISM:", |_| false)
        {
            out.push(diag(
                i,
                Rule::HashMapKernel,
                "hash collection in a numeric kernel module: iteration order is \
                 nondeterministic and breaks the bitwise determinism contract — use \
                 BTreeMap/BTreeSet or index-sorted vectors (or vouch with `// DETERMINISM:` \
                 if it provably never iterates)"
                    .to_string(),
            ));
        }

        // wallclock-kernel: wall-clock reads outside bench/telemetry files.
        if !wallclock_allowed(path)
            && (l.code.contains("Instant::now") || has_word(&l.code, "SystemTime"))
        {
            out.push(diag(
                i,
                Rule::WallclockKernel,
                "wall-clock read in kernel code: `Instant::now`/`SystemTime` belong in \
                 bench or telemetry files (see WALLCLOCK_ALLOWLIST in famg-check's lint \
                 module) — kernel decisions must never depend on time"
                    .to_string(),
            ));
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir` into `out`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `crates/*/src` and `shims/*/src` of the
/// workspace at `root`. Returns diagnostics with workspace-relative paths.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for group in ["crates", "shims"] {
        let gdir = root.join(group);
        if !gdir.is_dir() {
            continue;
        }
        let mut members: Vec<PathBuf> = std::fs::read_dir(&gdir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        members.sort();
        for m in members {
            let src = m.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let mut out = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(f)?;
        out.extend(lint_file(&rel, &src));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_strips_strings_and_comments() {
        let src = "let a = \"unsafe { }\"; // unsafe here\nlet b = 'x';\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("unsafe here"));
        assert!(lines[1].code.contains('\''));
    }

    #[test]
    fn scanner_handles_raw_strings_and_lifetimes() {
        let src = "let r = r#\"Ordering::Relaxed\"#;\nfn f<'a>(x: &'a u32) -> &'a u32 { x }\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("Ordering::Relaxed"));
        assert!(lines[1].code.contains("fn f<'a>"));
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let lines = scan(src);
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(lines[0].comment.contains("inner"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { g() } }\n}\n";
        let d = lint_file("crates/core/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_fn_is_exempt_but_block_is_not() {
        let src = "unsafe fn f() {}\nfn g() { unsafe { f() } }\n";
        let d = lint_file("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::UnsafeSafety.id());
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn safety_comment_suppresses() {
        let src = "fn g() {\n    // SAFETY: g is fine.\n    unsafe { f() }\n}\n";
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn ordering_cluster_shares_one_comment() {
        let src = "// ORDERING: both relaxed, counter only.\n\
                   a.fetch_add(1, Ordering::Relaxed);\n\
                   b.fetch_add(1, Ordering::Relaxed);\n\
                   c.store(0, Ordering::SeqCst);\n";
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn seqcst_needs_no_comment_but_relaxed_does() {
        let src = "a.store(1, Ordering::SeqCst);\nb.store(1, Ordering::Relaxed);\n";
        let d = lint_file("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::OrderingJustified.id());
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn hashmap_only_flagged_in_kernel_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_file("crates/sparse/src/x.rs", src).len(), 1);
        assert!(lint_file("crates/dist/src/x.rs", src).is_empty());
    }

    #[test]
    fn wallclock_respects_allowlist() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(lint_file("crates/sparse/src/x.rs", src).len(), 1);
        // The solve path must route timing through famg-prof spans now.
        assert_eq!(lint_file("crates/core/src/solver.rs", src).len(), 1);
        assert!(lint_file("crates/prof/src/lib.rs", src).is_empty());
        assert!(lint_file("crates/dist/src/comm.rs", src).is_empty());
        assert!(lint_file("crates/bench/src/lib.rs", src).is_empty());
    }
}

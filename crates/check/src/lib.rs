//! Invariant validators for famg.
//!
//! The optimizations this workspace reproduces from Park et al. (SC'15)
//! — fused one-pass RAP, CF-permutation with an implicit identity
//! block, unsafe unrolled/prefetched hybrid Gauss-Seidel — are exactly
//! the kind of code where a silent structural bug corrupts results
//! without crashing. This crate is the contract that makes those
//! optimizations safe to keep evolving:
//!
//! * [`structure`] — per-matrix CSR well-formedness (monotone row
//!   pointers, in-bounds/sorted/deduplicated column indices, finite
//!   values, symmetric pattern);
//! * [`amg`] — AMG-semantic checks at hierarchy level boundaries
//!   (CF-splitting validity, interpolation row sums and identity
//!   C-block, Galerkin RAP cross-check against a naive reference);
//! * [`parcsr`] — per-rank checks on distributed ParCSR parts.
//!
//! All checks return [`CheckResult`] rather than panicking, so callers
//! choose the failure policy. The `validate` feature of `famg-core` /
//! `famg-dist` wires them into hierarchy setup and panics with a
//! level-tagged report on the first violation; release builds without
//! the feature compile the calls out entirely.

pub mod amg;
pub mod benchjson;
pub mod diag;
pub mod lint;
pub mod parcsr;
pub mod structure;

pub use amg::{
    check_cf_splitting, check_galerkin, check_interp_c_identity, check_interp_identity_block,
    check_interp_row_sums, galerkin_sample_rows,
};
pub use parcsr::{check_parcsr, ParCsrParts};
pub use structure::{
    check_csr, check_finite, check_no_duplicates, check_raw_parts, check_sorted_unique,
    check_symmetric_pattern,
};

/// A single invariant violation: which check failed and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable identifier of the failed check (e.g. `"rowptr_monotone"`).
    pub check: &'static str,
    /// Human-readable location/context of the first offending entry.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant `{}` violated: {}", self.check, self.detail)
    }
}

impl std::error::Error for Violation {}

/// `Ok(())` if the invariant holds, otherwise the first [`Violation`].
pub type CheckResult = Result<(), Violation>;

pub(crate) fn fail(check: &'static str, detail: String) -> CheckResult {
    Err(Violation { check, detail })
}

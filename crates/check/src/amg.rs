//! AMG-semantic validators run at hierarchy level boundaries.

use crate::{fail, CheckResult};
use famg_sparse::transpose::transpose;
use famg_sparse::Csr;

/// Validates a PMIS-style CF splitting against strength matrix `s`
/// (row `i` = points `i` strongly depends on):
///
/// 1. **Independence** — no two C-points are neighbours in the
///    symmetrized strength graph;
/// 2. **Coverage** — every F-point with at least one strong connection
///    reaches a C-point within `max_dist` hops in the symmetrized graph
///    (`max_dist = 1` for plain PMIS).
///
/// Coverage exempts points nobody strongly depends on (empty transpose
/// row): PMIS demotes those to F unconditionally, so they carry no
/// nearby-C guarantee. Pass `max_dist = 0` to check independence only —
/// aggressive coarsening bounds no distance (a first-stage C-point with
/// no peer within two hops is demoted unconditionally, and multipass
/// interpolation then reaches C-points through F-chains of any length).
pub fn check_cf_splitting(s: &Csr, is_coarse: &[bool], max_dist: usize) -> CheckResult {
    let n = s.nrows();
    if is_coarse.len() != n || s.ncols() != n {
        return fail(
            "cf_shape",
            format!(
                "marker has {} entries for a {}x{} strength matrix",
                is_coarse.len(),
                s.nrows(),
                s.ncols()
            ),
        );
    }
    let st = transpose(s);
    for i in 0..n {
        if !is_coarse[i] {
            continue;
        }
        for &j in s.row_cols(i).iter().chain(st.row_cols(i)) {
            if is_coarse[j] {
                return fail(
                    "cf_independent",
                    format!("C-points {i} and {j} are strength-graph neighbours"),
                );
            }
        }
    }
    for i in 0..n {
        if max_dist == 0 {
            break; // independence-only mode
        }
        if is_coarse[i] || s.row_nnz(i) == 0 || st.row_nnz(i) == 0 {
            continue;
        }
        let mut frontier = vec![i];
        let mut found = false;
        'bfs: for _ in 0..max_dist {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in s.row_cols(u).iter().chain(st.row_cols(u)) {
                    if is_coarse[v] {
                        found = true;
                        break 'bfs;
                    }
                    next.push(v);
                }
            }
            frontier = next;
        }
        if !found {
            return fail(
                "cf_coverage",
                format!("F-point {i} has no C-point within {max_dist} hops"),
            );
        }
    }
    Ok(())
}

/// Checks the C-rows of an **unpermuted** interpolation operator: every
/// C-point row must be a single unit entry at its own coarse index
/// (injection), with coarse indices numbered in fine-point order.
pub fn check_interp_c_identity(p: &Csr, is_coarse: &[bool]) -> CheckResult {
    if p.nrows() != is_coarse.len() {
        return fail(
            "interp_shape",
            format!("P has {} rows for {} markers", p.nrows(), is_coarse.len()),
        );
    }
    let mut ci = 0usize;
    for i in 0..p.nrows() {
        if !is_coarse[i] {
            continue;
        }
        let (cols, vals) = (p.row_cols(i), p.row_vals(i));
        if cols.len() != 1 || cols[0] != ci || vals[0] != 1.0 {
            return fail(
                "interp_c_identity",
                format!(
                    "C-point row {i} is not injection to coarse index {ci}: cols {cols:?}, vals {vals:?}"
                ),
            );
        }
        ci += 1;
    }
    if ci != p.ncols() {
        return fail(
            "interp_c_identity",
            format!("marker has {ci} C-points but P has {} columns", p.ncols()),
        );
    }
    Ok(())
}

/// Checks the leading block of a **CF-permuted** interpolation operator
/// `P = [I; P_F]`: rows `0..nc` must form an exact identity (§3 of the
/// paper stores it implicitly; when materialized it must be exact).
pub fn check_interp_identity_block(pfull: &Csr, nc: usize) -> CheckResult {
    if pfull.ncols() != nc {
        return fail(
            "interp_shape",
            format!("P has {} columns, want nc = {nc}", pfull.ncols()),
        );
    }
    for i in 0..nc.min(pfull.nrows()) {
        let (cols, vals) = (pfull.row_cols(i), pfull.row_vals(i));
        if cols.len() != 1 || cols[0] != i || vals[0] != 1.0 {
            return fail(
                "interp_identity_block",
                format!("row {i} of the C-block is not e_{i}: cols {cols:?}, vals {vals:?}"),
            );
        }
    }
    Ok(())
}

/// Checks that interpolation reproduces constants where the operator
/// annihilates them: for every row `i` of `a` whose row sum is
/// (numerically) zero, the corresponding nonempty row of `p` must sum
/// to 1 within `tol`.
///
/// Rows of `a` with a non-zero row sum (Dirichlet boundaries, shifted
/// operators) are skipped — constants are not in their near-null space.
pub fn check_interp_row_sums(p: &Csr, a: &Csr, tol: f64) -> CheckResult {
    if p.nrows() != a.nrows() {
        return fail(
            "interp_shape",
            format!("P has {} rows for a {}-row operator", p.nrows(), a.nrows()),
        );
    }
    for i in 0..p.nrows() {
        if p.row_nnz(i) == 0 {
            continue;
        }
        let row_sum: f64 = a.row_vals(i).iter().sum();
        let row_abs: f64 = a.row_vals(i).iter().map(|v| v.abs()).sum();
        if row_sum.abs() > 1e-10 * row_abs.max(1.0) {
            continue; // constants not in the local near-null space
        }
        let w: f64 = p.row_vals(i).iter().sum();
        if (w - 1.0).abs() > tol {
            return fail(
                "interp_row_sum",
                format!("row {i} of P sums to {w} (want 1 ± {tol})"),
            );
        }
    }
    Ok(())
}

/// Evenly spaced sample of coarse row indices for [`check_galerkin`].
pub fn galerkin_sample_rows(nc: usize, max_samples: usize) -> Vec<usize> {
    if nc == 0 || max_samples == 0 {
        return Vec::new();
    }
    if nc <= max_samples {
        return (0..nc).collect();
    }
    (0..max_samples).map(|k| k * nc / max_samples).collect()
}

/// Cross-checks sampled rows of a fused Galerkin product `ac` against a
/// naive reference triple product `Pᵀ·A·P` computed with dense
/// accumulators.
///
/// `sample_rows` are coarse row indices (see [`galerkin_sample_rows`]);
/// each sampled row must match within `tol` relative to its norm.
pub fn check_galerkin(ac: &Csr, a: &Csr, p: &Csr, sample_rows: &[usize], tol: f64) -> CheckResult {
    let (n, nc) = (a.nrows(), p.ncols());
    if p.nrows() != n || ac.nrows() != nc || ac.ncols() != nc {
        return fail(
            "galerkin_shape",
            format!(
                "A is {}x{}, P is {}x{}, AC is {}x{}",
                a.nrows(),
                a.ncols(),
                p.nrows(),
                p.ncols(),
                ac.nrows(),
                ac.ncols()
            ),
        );
    }
    let pt = transpose(p);
    let mut acc = vec![0.0f64; nc];
    let mut touched: Vec<usize> = Vec::new();
    for &c in sample_rows {
        // Reference row c of Pᵀ·A·P.
        for (i, pic) in pt.row_iter(c) {
            for (k, aik) in a.row_iter(i) {
                let w = pic * aik;
                for (j, pkj) in p.row_iter(k) {
                    if acc[j] == 0.0 {
                        touched.push(j);
                    }
                    acc[j] += w * pkj;
                }
            }
        }
        // Compare against the stored row, then reset the accumulator.
        let mut ref_norm = 0.0f64;
        for &j in &touched {
            ref_norm += acc[j] * acc[j];
        }
        let scale = ref_norm.sqrt().max(1.0);
        let mut max_err = 0.0f64;
        for (j, v) in ac.row_iter(c) {
            let e = (v - acc[j]).abs();
            if e > max_err {
                max_err = e;
            }
            if acc[j] == 0.0 {
                touched.push(j); // AC-only entry: make sure it is reset below
            }
            acc[j] -= v; // whatever is left is missing from AC
        }
        for &j in &touched {
            let e = acc[j].abs();
            if e > max_err {
                max_err = e;
            }
            acc[j] = 0.0;
        }
        touched.clear();
        if max_err > tol * scale {
            return fail(
                "galerkin_rap",
                format!(
                    "row {c} of AC deviates from reference P^T A P by {max_err:e} (tol {:e})",
                    tol * scale
                ),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use famg_sparse::spgemm::spgemm_two_pass;

    fn path_strength(n: usize) -> Csr {
        // Strength graph of a 1-D path: i ~ i-1, i+1.
        let mut t = Vec::new();
        for i in 0..n {
            if i > 0 {
                t.push((i, i - 1, 1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, 1.0));
            }
        }
        Csr::from_triplets(n, n, t)
    }

    #[test]
    fn alternating_cf_on_path_is_valid() {
        let s = path_strength(7);
        let marker: Vec<bool> = (0..7).map(|i| i % 2 == 0).collect();
        assert!(check_cf_splitting(&s, &marker, 1).is_ok());
    }

    #[test]
    fn rejects_adjacent_c_points_and_uncovered_f_points() {
        let s = path_strength(7);
        let adjacent: Vec<bool> = (0..7).map(|i| i < 2).collect();
        assert_eq!(
            check_cf_splitting(&s, &adjacent, 1).unwrap_err().check,
            "cf_independent"
        );
        let uncovered = vec![true, false, false, false, false, false, true];
        assert_eq!(
            check_cf_splitting(&s, &uncovered, 1).unwrap_err().check,
            "cf_coverage"
        );
    }

    #[test]
    fn c_identity_checks() {
        // 4 points, C = {0, 2}; F rows average their C neighbours.
        let marker = vec![true, false, true, false];
        let p = Csr::from_triplets(
            4,
            2,
            vec![
                (0, 0, 1.0),
                (1, 0, 0.5),
                (1, 1, 0.5),
                (2, 1, 1.0),
                (3, 1, 1.0),
            ],
        );
        assert!(check_interp_c_identity(&p, &marker).is_ok());
        let bad = Csr::from_triplets(
            4,
            2,
            vec![
                (0, 0, 0.9),
                (1, 0, 0.5),
                (1, 1, 0.5),
                (2, 1, 1.0),
                (3, 1, 1.0),
            ],
        );
        assert_eq!(
            check_interp_c_identity(&bad, &marker).unwrap_err().check,
            "interp_c_identity"
        );
    }

    #[test]
    fn identity_block_checks() {
        let p = Csr::from_triplets(
            4,
            2,
            vec![(0, 0, 1.0), (1, 1, 1.0), (2, 0, 0.5), (3, 1, 0.5)],
        );
        assert!(check_interp_identity_block(&p, 2).is_ok());
        let bad = Csr::from_triplets(
            4,
            2,
            vec![(0, 1, 1.0), (1, 1, 1.0), (2, 0, 0.5), (3, 1, 0.5)],
        );
        assert_eq!(
            check_interp_identity_block(&bad, 2).unwrap_err().check,
            "interp_identity_block"
        );
    }

    #[test]
    fn row_sum_check_skips_nonzero_rowsum_rows() {
        // Row 0 of A sums to zero (interior), row 1 does not (boundary).
        let a = Csr::from_triplets(
            2,
            2,
            vec![(0, 0, 1.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 3.0)],
        );
        let good = Csr::from_triplets(2, 1, vec![(0, 0, 1.0), (1, 0, 0.4)]);
        assert!(check_interp_row_sums(&good, &a, 1e-12).is_ok());
        let bad = Csr::from_triplets(2, 1, vec![(0, 0, 0.7), (1, 0, 0.4)]);
        assert_eq!(
            check_interp_row_sums(&bad, &a, 1e-12).unwrap_err().check,
            "interp_row_sum"
        );
    }

    #[test]
    fn galerkin_detects_corruption() {
        // A = 1-D Laplacian, P = pairwise aggregation.
        let n = 8;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let a = Csr::from_triplets(n, n, t);
        let p = Csr::from_triplets(
            n,
            n / 2,
            (0..n).map(|i| (i, i / 2, 1.0)).collect::<Vec<_>>(),
        );
        let r = transpose(&p);
        let ac = spgemm_two_pass(&spgemm_two_pass(&r, &a), &p);
        let rows = galerkin_sample_rows(n / 2, 16);
        assert!(check_galerkin(&ac, &a, &p, &rows, 1e-10).is_ok());
        let mut corrupt = ac.clone();
        corrupt.values_mut()[0] += 0.125;
        assert_eq!(
            check_galerkin(&corrupt, &a, &p, &rows, 1e-10)
                .unwrap_err()
                .check,
            "galerkin_rap"
        );
    }
}

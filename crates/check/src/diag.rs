//! Shared diagnostic representation for the source auditors (`famg-lint`,
//! `famg-analyze`).
//!
//! Both tools address findings as `path:line: [rule] message` so a CI log
//! line is clickable, and both expose the same machine-readable JSON
//! rendering (`--format json`) so findings can sit alongside the
//! `BENCH_*.json` telemetry records in `target/` artifacts.

use std::fmt;

/// One finding, addressable as `path:line`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path as scanned (workspace-relative when produced by a workspace
    /// walker).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule id, printed in brackets (e.g. `unsafe-safety`,
    /// `alloc-in-solve-path`).
    pub rule: &'static str,
    /// Human-readable explanation with the expected fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Escapes `s` for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a versioned JSON document:
///
/// ```json
/// {"schema": "famg-diag-v1", "tool": "famg-lint", "count": 1,
///  "findings": [{"path": "...", "line": 3, "rule": "...", "message": "..."}]}
/// ```
///
/// The format is stable (append-only) so downstream tooling can consume
/// findings from either auditor uniformly.
#[must_use]
pub fn to_json(tool: &str, diags: &[Diagnostic]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"famg-diag-v1\",\n");
    let _ = writeln!(out, "  \"tool\": \"{}\",", json_escape(tool));
    let _ = writeln!(out, "  \"count\": {},", diags.len());
    out.push_str("  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.path),
            d.line,
            json_escape(d.rule),
            json_escape(&d.message)
        );
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchjson::JsonValue;

    #[test]
    fn renders_as_path_line_rule() {
        let d = Diagnostic {
            path: "crates/x/src/y.rs".into(),
            line: 7,
            rule: "some-rule",
            message: "explain".into(),
        };
        assert_eq!(d.to_string(), "crates/x/src/y.rs:7: [some-rule] explain");
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = Diagnostic {
            path: "a.rs".into(),
            line: 1,
            rule: "r",
            message: "say \"hi\"\nback\\slash".into(),
        };
        let j = to_json("famg-test", &[d]);
        assert!(j.contains("\"schema\": \"famg-diag-v1\""));
        assert!(j.contains("\"tool\": \"famg-test\""));
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("say \\\"hi\\\"\\nback\\\\slash"));
        // Must parse under the workspace's own JSON parser.
        let v = crate::benchjson::JsonValue::parse(&j).expect("valid JSON");
        assert_eq!(v.get("count").and_then(JsonValue::num), Some(1.0));
    }

    #[test]
    fn empty_findings_is_valid_json() {
        let j = to_json("t", &[]);
        let v = crate::benchjson::JsonValue::parse(&j).expect("valid JSON");
        assert_eq!(v.get("count").and_then(JsonValue::num), Some(0.0));
    }
}

//! Self-tests for the model checker: each seeded concurrency bug must be
//! caught, and each correct protocol must pass exhaustively.

use famg_model::sync::atomic::{AtomicUsize, Ordering};
use famg_model::sync::{Condvar, Mutex};
use famg_model::{model, model_with, thread, Bounds, RaceCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Runs `f` expecting the model run to fail; returns the failure message.
fn expect_model_failure<F: Fn() + Send + Sync + 'static>(f: F) -> String {
    let err = catch_unwind(AssertUnwindSafe(|| model(f)))
        .expect_err("model run passed but a failure was expected");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(ToString::to_string))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

#[test]
fn explores_multiple_schedules() {
    let report = model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let h = thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        n.fetch_add(1, Ordering::SeqCst);
        h.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    // The child's RMW can land before or after the parent's — the search
    // must visit both interleavings.
    assert!(report.schedules >= 2, "schedules = {}", report.schedules);
}

#[test]
fn mutex_protected_counter_is_clean() {
    model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            *m2.lock().unwrap() += 1;
        });
        *m.lock().unwrap() += 1;
        h.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
}

#[test]
fn release_acquire_publish_is_clean() {
    model(|| {
        let data = Arc::new(RaceCell::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let h = thread::spawn(move || {
            d.write(42);
            // ORDERING: Release pairs with the Acquire load below.
            f.store(1, Ordering::Release);
        });
        // ORDERING: Acquire pairs with the Release store above.
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.read(), 42);
        }
        h.join().unwrap();
    });
}

#[test]
fn relaxed_publish_is_flagged_as_race() {
    let msg = expect_model_failure(|| {
        let data = Arc::new(RaceCell::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let h = thread::spawn(move || {
            d.write(42);
            // ORDERING: deliberately wrong — Relaxed publishes nothing; the
            // checker must flag the read below as a data race.
            f.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            let _ = d_read_probe(&data);
        }
        h.join().unwrap();
    });
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
}

/// Indirection so the racy read is not optimized into the branch above.
fn d_read_probe(c: &RaceCell<i32>) -> i32 {
    c.read()
}

#[test]
fn release_sequence_through_relaxed_rmw_is_clean() {
    // A Release store followed by a Relaxed RMW continues the release
    // sequence (C11): an Acquire load of the RMW'd value still synchronizes
    // with the original Release store.
    model(|| {
        let data = Arc::new(RaceCell::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let h = thread::spawn(move || {
            d.write(7);
            // ORDERING: Release heads the release sequence read below.
            f.store(1, Ordering::Release);
            // ORDERING: Relaxed RMW continues (does not break) the sequence.
            f.fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: Acquire synchronizes with the Release store through the
        // release sequence even when it observes the RMW's value.
        if flag.load(Ordering::Acquire) == 2 {
            assert_eq!(data.read(), 7);
        }
        h.join().unwrap();
    });
}

#[test]
fn abba_deadlock_is_detected() {
    let msg = expect_model_failure(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let gb = b.lock().unwrap();
        let ga = a.lock().unwrap();
        drop((ga, gb));
        h.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn lost_wakeup_is_detected() {
    // Buggy protocol: the notifier sets the flag and notifies without
    // holding the mutex the waiter checks under. The waiter can observe the
    // stale flag, then park after the (unlatched) notify already fired.
    let msg = expect_model_failure(|| {
        let m = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let flag = Arc::new(AtomicUsize::new(0));
        let (cv2, f2) = (Arc::clone(&cv), Arc::clone(&flag));
        let h = thread::spawn(move || {
            f2.store(1, Ordering::SeqCst);
            cv2.notify_all();
        });
        let mut g = m.lock().unwrap();
        while flag.load(Ordering::SeqCst) == 0 {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        h.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn guarded_wakeup_is_clean() {
    // Fixed protocol: the flag is written under the same mutex the waiter
    // checks it under, so the check-then-wait window is closed.
    model(|| {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = thread::spawn(move || {
            *m2.lock().unwrap() = true;
            cv2.notify_all();
        });
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        h.join().unwrap();
    });
}

#[test]
fn non_atomic_increment_is_caught() {
    // load + store is not an increment: two threads can both read 0 and
    // both store 1. The final assertion fails on that interleaving and the
    // model reports it with the schedule.
    let msg = expect_model_failure(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let h = thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        h.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(msg.contains("panicked"), "unexpected failure: {msg}");
}

#[test]
fn object_reuse_across_executions_is_rejected() {
    // Created outside the model closure, the atomic would smuggle state
    // between schedules; the second execution must refuse it.
    let n = Arc::new(AtomicUsize::new(0));
    let msg = expect_model_failure(move || {
        let n2 = Arc::clone(&n);
        let h = thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        n.fetch_add(1, Ordering::SeqCst);
        h.join().unwrap();
    });
    assert!(
        msg.contains("reused across executions"),
        "unexpected failure: {msg}"
    );
}

#[test]
fn thread_bound_is_enforced() {
    let bounds = Bounds {
        max_threads: 2,
        ..Bounds::default()
    };
    let err = catch_unwind(AssertUnwindSafe(|| {
        model_with(bounds, || {
            let h1 = thread::spawn(|| {});
            let h2 = thread::spawn(|| {});
            h1.join().unwrap();
            h2.join().unwrap();
        });
    }))
    .expect_err("thread bound was not enforced");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("thread bound exceeded"), "got: {msg}");
}

#[test]
fn yield_now_creates_schedule_points() {
    let report = model(|| {
        let h = thread::spawn(|| {
            thread::yield_now();
        });
        thread::yield_now();
        h.join().unwrap();
    });
    assert!(report.schedules >= 2, "schedules = {}", report.schedules);
}

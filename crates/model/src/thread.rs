//! Modeled thread spawn/join, mirroring the `std::thread` subset the pool
//! shim uses. Modeled threads are real OS threads, but every visible
//! operation hand-shakes with the scheduler, so at most one runs at a time
//! and the interleaving is chosen by the DFS search.

use crate::sched::{join_modeled, offer, spawn_modeled, Op};
use std::sync::{Arc, Mutex};

/// Handle to a modeled thread; `join` is a scheduler yield point that also
/// establishes the usual happens-before edge from the thread's last action.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Parks until the thread finishes, returning its result. A modeled
    /// thread that panicked fails the whole model run (with the offending
    /// schedule) before `join` can observe it, so this only errors if the
    /// result was somehow not produced.
    pub fn join(self) -> std::thread::Result<T> {
        join_modeled(self.tid);
        let v = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        match v {
            Some(v) => Ok(v),
            None => Err(Box::new("famg-model: joined thread produced no value")),
        }
    }
}

/// Spawns a modeled thread. Must be called from inside a model execution;
/// counts against [`crate::Bounds::max_threads`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let tid = spawn_modeled(Box::new(move || {
        let v = f();
        *slot2
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
    }));
    JoinHandle { tid, slot }
}

/// A pure scheduling yield point: lets the search interleave other threads
/// here without touching any data.
pub fn yield_now() {
    offer(Op::Yield);
}

//! The DFS interleaving scheduler behind [`model`].
//!
//! Every modeled operation is a *yield point*: the executing thread parks,
//! the controller (running on the caller of [`model`]) picks which runnable
//! thread performs its next operation, and the chosen thread applies the
//! operation's effect under the scheduler lock. Executions are therefore
//! sequentially consistent and fully serialized — at most one modeled thread
//! runs user code at any instant — which makes replay deterministic and
//! keeps the modeled `UnsafeCell` accesses free of real data races.
//!
//! The search is depth-first over scheduling choices with CHESS-style
//! preemption bounding: switching away from a thread that is still runnable
//! costs one unit of the preemption budget, switching when the current
//! thread blocked or finished is free. All schedules within the budget are
//! explored exhaustively; exceeding [`Bounds::max_schedules`] or
//! [`Bounds::max_steps`] fails the run loudly rather than truncating.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Exploration limits for one [`model_with`] call. All limits are hard:
/// exceeding `max_steps` or `max_schedules` panics (an incomplete search
/// must never look like a passing one).
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Maximum modeled threads alive at once (including the closure's own
    /// "main" thread). Spawning beyond this fails the run.
    pub max_threads: usize,
    /// Maximum scheduler steps (granted operations) per execution.
    pub max_steps: usize,
    /// Maximum executions (distinct schedules) per model run.
    pub max_schedules: usize,
    /// Maximum preemptive context switches per execution (CHESS bound).
    /// Non-preemptive switches — taken when the running thread blocks or
    /// finishes — are always free.
    pub preemption_bound: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_threads: 4,
            max_steps: 1_000,
            max_schedules: 100_000,
            preemption_bound: 2,
        }
    }
}

/// Summary of a completed (fully explored) model run.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// Largest number of scheduler steps any single execution took.
    pub max_steps_seen: usize,
}

/// A vector clock: `clock[t]` is the last event of thread `t` known to
/// happen-before the clock's owner.
pub(crate) type VClock = Vec<u64>;

fn clock_join(dst: &mut VClock, src: &VClock) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

fn clock_leq(a: &VClock, b: &VClock) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

/// The read-modify-write operations the modeled [`sync::atomic::AtomicUsize`]
/// supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Rmw {
    Add(usize),
    Sub(usize),
    Swap(usize),
}

/// One modeled operation, declared by a thread at its yield point. The
/// controller uses it for enablement checks; the thread applies its effect
/// once granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Op {
    /// First step of a freshly spawned thread.
    Begin,
    AtomicLoad {
        id: usize,
        ord: Ordering,
    },
    AtomicStore {
        id: usize,
        ord: Ordering,
        val: usize,
    },
    AtomicRmw {
        id: usize,
        ord: Ordering,
        rmw: Rmw,
    },
    MutexLock {
        id: usize,
    },
    MutexUnlock {
        id: usize,
    },
    /// Atomically release `mutex` and park on `cv`.
    CvWait {
        cv: usize,
        mutex: usize,
    },
    CvNotifyAll {
        cv: usize,
    },
    CellRead {
        id: usize,
    },
    CellWrite {
        id: usize,
    },
    Spawn {
        child: usize,
    },
    Join {
        target: usize,
    },
    Yield,
}

/// What a thread is doing, from the controller's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Registered but its OS thread has not reached its first yield point
    /// yet. Not schedulable; the controller waits for it to arrive.
    Embryo,
    /// Parked at a yield point, next operation declared.
    Ready(Op),
    /// Granted: currently applying its operation / running user code.
    Running,
    /// Parked on a condvar, waiting for a notify (not schedulable).
    Waiting {
        cv: usize,
        mutex: usize,
    },
    Finished,
}

struct AtomicState {
    val: usize,
    /// Release clock: joined into an acquiring loader. Maintained per the
    /// C11 release-sequence rules (relaxed RMWs extend the sequence,
    /// relaxed stores break it).
    rel: VClock,
}

struct MutexState {
    owner: Option<usize>,
    /// Clock of the last unlock — joined by the next lock (total order of
    /// critical sections).
    clock: VClock,
}

struct CellState {
    /// Clock of the writing thread at the last write.
    write: VClock,
    /// Writer thread of the last write (for diagnostics).
    writer: usize,
    /// `reads[t]`: local time of thread `t` at its last read.
    reads: VClock,
}

pub(crate) struct ExecInner {
    status: Vec<Status>,
    clocks: Vec<VClock>,
    granted: Option<usize>,
    atomics: Vec<AtomicState>,
    mutexes: Vec<MutexState>,
    cells: Vec<CellState>,
    /// Condvars carry no state beyond their waiters (tracked in `status`);
    /// this is just the id allocator.
    n_cvs: usize,
    /// Threads spawned but not yet finished.
    live: usize,
    steps: usize,
    /// Executed (tid, op) pairs, for failure reports.
    trace: Vec<(usize, Op)>,
    failure: Option<String>,
    aborting: bool,
    bounds: Bounds,
}

/// One model execution: the scheduler state plus the condvar the controller
/// and every modeled thread hand shake on.
pub(crate) struct Exec {
    inner: StdMutex<ExecInner>,
    cv: StdCondvar,
    /// OS handles of every modeled thread, joined at teardown.
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Panic payload used to unwind modeled threads during teardown; raised with
/// `resume_unwind` so the panic hook stays silent.
struct ModelAbort;

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Exec>,
    pub(crate) tid: usize,
    pub(crate) epoch: u64,
}

/// Runs `f` with the current model context, panicking with a pointed message
/// if no model execution is active on this thread.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b.as_ref().expect(
            "famg-model primitive used outside a model execution — wrap the test in famg_model::model(..)",
        );
        f(ctx)
    })
}

/// True if the calling thread is a modeled thread of an active execution.
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

static EPOCH: AtomicU64 = AtomicU64::new(1);

fn lock_inner(exec: &Exec) -> StdMutexGuard<'_, ExecInner> {
    // The inner mutex is never poisoned on purpose: modeled threads drop the
    // guard before unwinding. Recover anyway so teardown can always report.
    exec.inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Exec {
    fn new(bounds: Bounds) -> Exec {
        Exec {
            inner: StdMutex::new(ExecInner {
                status: Vec::new(),
                clocks: Vec::new(),
                granted: None,
                atomics: Vec::new(),
                mutexes: Vec::new(),
                cells: Vec::new(),
                n_cvs: 0,
                live: 0,
                steps: 0,
                trace: Vec::new(),
                failure: None,
                aborting: false,
                bounds,
            }),
            cv: StdCondvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    /// Registers a new modeled thread whose clock starts at `clock`,
    /// returning its tid. Caller must hold the inner lock via `g`.
    fn register_thread(g: &mut ExecInner, clock: VClock) -> usize {
        let tid = g.status.len();
        g.status.push(Status::Embryo);
        let mut c = clock;
        if c.len() <= tid {
            c.resize(tid + 1, 0);
        }
        c[tid] += 1;
        g.clocks.push(c);
        g.live += 1;
        tid
    }

    pub(crate) fn register_atomic(&self, init: usize) -> usize {
        let mut g = lock_inner(self);
        g.atomics.push(AtomicState {
            val: init,
            rel: Vec::new(),
        });
        g.atomics.len() - 1
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut g = lock_inner(self);
        g.mutexes.push(MutexState {
            owner: None,
            clock: Vec::new(),
        });
        g.mutexes.len() - 1
    }

    pub(crate) fn register_cv(&self) -> usize {
        let mut g = lock_inner(self);
        g.n_cvs += 1;
        g.n_cvs - 1
    }

    pub(crate) fn register_cell(&self, creator_clock: VClock) -> usize {
        let mut g = lock_inner(self);
        g.cells.push(CellState {
            write: creator_clock,
            writer: usize::MAX,
            reads: Vec::new(),
        });
        g.cells.len() - 1
    }

    pub(crate) fn creator_clock(&self, tid: usize) -> VClock {
        lock_inner(self).clocks[tid].clone()
    }
}

/// Records `msg` as the execution's failure (first failure wins) and begins
/// teardown: every parked thread is woken and unwinds with [`ModelAbort`].
fn fail_locked(exec: &Exec, g: &mut ExecInner, msg: String) {
    if g.failure.is_none() {
        g.failure = Some(msg);
    }
    g.aborting = true;
    exec.cv.notify_all();
}

fn is_acquire(ord: Ordering) -> bool {
    // ORDERING: classifier for the happens-before rules — these are the
    // orderings whose loads join the release clock of the store they read.
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    // ORDERING: classifier for the happens-before rules — these are the
    // orderings whose stores publish the writer's clock to acquiring loads.
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Is `op` currently executable? (Threads parked on a full mutex or an
/// unfinished join are declared but not enabled.)
fn enabled(op: &Op, g: &ExecInner) -> bool {
    match *op {
        Op::MutexLock { id } => g.mutexes[id].owner.is_none(),
        Op::Join { target } => g.status[target] == Status::Finished,
        _ => true,
    }
}

/// Applies `op`'s effect for thread `tid`. Returns the operation's value
/// (atomic loads / RMW previous values); `Err` carries a model failure.
fn apply(g: &mut ExecInner, tid: usize, op: &Op) -> Result<usize, String> {
    // Every operation is a new event on its thread.
    let t_len = g.clocks.len().max(tid + 1);
    if g.clocks[tid].len() < t_len {
        g.clocks[tid].resize(t_len, 0);
    }
    g.clocks[tid][tid] += 1;
    g.trace.push((tid, op.clone()));
    match *op {
        Op::Begin | Op::Yield | Op::Spawn { .. } => Ok(0),
        Op::AtomicLoad { id, ord } => {
            if is_acquire(ord) {
                let rel = g.atomics[id].rel.clone();
                clock_join(&mut g.clocks[tid], &rel);
            }
            Ok(g.atomics[id].val)
        }
        Op::AtomicStore { id, ord, val } => {
            g.atomics[id].val = val;
            g.atomics[id].rel = if is_release(ord) {
                g.clocks[tid].clone()
            } else {
                // A relaxed store breaks any release sequence headed here.
                Vec::new()
            };
            Ok(val)
        }
        Op::AtomicRmw { id, ord, rmw } => {
            let prev = g.atomics[id].val;
            let next = match rmw {
                Rmw::Add(n) => prev.wrapping_add(n),
                Rmw::Sub(n) => prev.wrapping_sub(n),
                Rmw::Swap(n) => n,
            };
            g.atomics[id].val = next;
            if is_acquire(ord) {
                let rel = g.atomics[id].rel.clone();
                clock_join(&mut g.clocks[tid], &rel);
            }
            if is_release(ord) {
                // An RMW joins the existing release sequence rather than
                // replacing it: acquirers of later values see both.
                let snapshot = g.clocks[tid].clone();
                clock_join(&mut g.atomics[id].rel, &snapshot);
            }
            // A relaxed RMW leaves the release clock untouched — it
            // *continues* the release sequence (C11 §5.1.2.4).
            Ok(prev)
        }
        Op::MutexLock { id } => {
            debug_assert!(g.mutexes[id].owner.is_none());
            g.mutexes[id].owner = Some(tid);
            let c = g.mutexes[id].clock.clone();
            clock_join(&mut g.clocks[tid], &c);
            Ok(0)
        }
        Op::MutexUnlock { id } => {
            if g.mutexes[id].owner != Some(tid) {
                return Err(format!("thread {tid} unlocked mutex {id} it does not hold"));
            }
            g.mutexes[id].owner = None;
            g.mutexes[id].clock = g.clocks[tid].clone();
            Ok(0)
        }
        Op::CvWait { cv, mutex } => {
            if g.mutexes[mutex].owner != Some(tid) {
                return Err(format!(
                    "thread {tid} waited on condvar {cv} without holding mutex {mutex}"
                ));
            }
            g.mutexes[mutex].owner = None;
            g.mutexes[mutex].clock = g.clocks[tid].clone();
            g.status[tid] = Status::Waiting { cv, mutex };
            Ok(0)
        }
        Op::CvNotifyAll { cv } => {
            for t in 0..g.status.len() {
                if let Status::Waiting { cv: wcv, mutex } = g.status[t] {
                    if wcv == cv {
                        // Notified waiters re-acquire their mutex before
                        // returning; ordering flows through the mutex.
                        g.status[t] = Status::Ready(Op::MutexLock { id: mutex });
                    }
                }
            }
            Ok(0)
        }
        Op::CellRead { id } => {
            let ok = clock_leq(&g.cells[id].write, &g.clocks[tid]);
            if !ok {
                return Err(format!(
                    "data race: thread {tid} read RaceCell {id} unordered with thread {}'s write",
                    g.cells[id].writer
                ));
            }
            let t = g.clocks[tid][tid];
            if g.cells[id].reads.len() <= tid {
                g.cells[id].reads.resize(tid + 1, 0);
            }
            g.cells[id].reads[tid] = t;
            Ok(0)
        }
        Op::CellWrite { id } => {
            if !clock_leq(&g.cells[id].write, &g.clocks[tid]) {
                return Err(format!(
                    "data race: thread {tid} wrote RaceCell {id} unordered with thread {}'s write",
                    g.cells[id].writer
                ));
            }
            let reads = g.cells[id].reads.clone();
            for (r, &at) in reads.iter().enumerate() {
                if at > g.clocks[tid].get(r).copied().unwrap_or(0) {
                    return Err(format!(
                        "data race: thread {tid} wrote RaceCell {id} unordered with thread {r}'s read"
                    ));
                }
            }
            let inner = &mut *g;
            inner.cells[id].write.clone_from(&inner.clocks[tid]);
            inner.cells[id].writer = tid;
            Ok(0)
        }
        Op::Join { target } => {
            debug_assert_eq!(g.status[target], Status::Finished);
            let c = g.clocks[target].clone();
            clock_join(&mut g.clocks[tid], &c);
            Ok(0)
        }
    }
}

/// Declares `op` at a yield point, parks until the controller grants this
/// thread, applies the effect, and returns the operation's value. This is
/// the single entry point every modeled primitive funnels through.
pub(crate) fn offer(op: Op) -> usize {
    // A panicking thread is either a failed execution unwinding toward
    // `thread_main` or a teardown abort; destructors along that path (e.g.
    // `Pool::drop` joining its workers) still reach modeled primitives.
    // Re-entering the scheduler from a destructor would park forever or
    // double-panic and abort the process, losing the failure report — the
    // execution is condemned, so every further operation is a benign no-op.
    if std::thread::panicking() {
        return 0;
    }
    let ctx = with_ctx(Ctx::clone);
    let exec = &ctx.exec;
    let tid = ctx.tid;
    let mut g = lock_inner(exec);
    g.status[tid] = Status::Ready(op.clone());
    exec.cv.notify_all();
    loop {
        if g.aborting {
            drop(g);
            std::panic::resume_unwind(Box::new(ModelAbort));
        }
        if g.granted == Some(tid) {
            g.granted = None;
            break;
        }
        g = exec
            .cv
            .wait(g)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    let out = match apply(&mut g, tid, &op) {
        Ok(v) => v,
        Err(msg) => {
            fail_locked(exec, &mut g, msg);
            drop(g);
            std::panic::resume_unwind(Box::new(ModelAbort));
        }
    };
    if let Op::CvWait { cv: _, mutex } = op {
        // Status is now Waiting; a notify_all will flip it back to
        // Ready(MutexLock) and the controller will grant the re-acquire.
        exec.cv.notify_all();
        loop {
            if g.aborting {
                drop(g);
                std::panic::resume_unwind(Box::new(ModelAbort));
            }
            if g.granted == Some(tid) {
                g.granted = None;
                break;
            }
            g = exec
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let relock = Op::MutexLock { id: mutex };
        if let Err(msg) = apply(&mut g, tid, &relock) {
            fail_locked(exec, &mut g, msg);
            drop(g);
            std::panic::resume_unwind(Box::new(ModelAbort));
        }
    }
    g.status[tid] = Status::Running;
    drop(g);
    out
}

/// Spawns a modeled thread running `body`; used by [`crate::thread::spawn`]
/// (which layers the typed join handle on top). Returns the child tid.
pub(crate) fn spawn_modeled(body: Box<dyn FnOnce() + Send + 'static>) -> usize {
    // As in `offer`: never register new threads from an unwinding path.
    if std::thread::panicking() {
        drop(body);
        return usize::MAX;
    }
    let ctx = with_ctx(Ctx::clone);
    let exec = Arc::clone(&ctx.exec);
    let child = {
        let mut g = lock_inner(&exec);
        if g.status.len() >= g.bounds.max_threads {
            let msg = format!(
                "thread bound exceeded: {} modeled threads already exist (max_threads = {})",
                g.status.len(),
                g.bounds.max_threads
            );
            fail_locked(&exec, &mut g, msg);
            drop(g);
            std::panic::resume_unwind(Box::new(ModelAbort));
        }
        let parent_clock = g.clocks[ctx.tid].clone();
        Exec::register_thread(&mut g, parent_clock)
    };
    // OS-spawn before the parent's next yield point: once registered, the
    // child counts as live, so its OS thread must be guaranteed to arrive
    // (even if the parent unwinds at the very next operation). The child's
    // clock already carries the spawn edge from registration.
    let exec2 = Arc::clone(&exec);
    let epoch = ctx.epoch;
    let os = std::thread::Builder::new()
        .name(format!("famg-model-{child}"))
        .spawn(move || thread_main(exec2, child, epoch, body))
        .expect("failed to spawn famg-model thread");
    exec.os_handles
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(os);
    // The spawn itself is a visible scheduling event on the parent.
    offer(Op::Spawn { child });
    child
}

/// Parks until `target` finishes, then joins its clock (the happens-before
/// edge of `JoinHandle::join`).
pub(crate) fn join_modeled(target: usize) {
    offer(Op::Join { target });
}

/// Body run by every modeled OS thread: waits for its `Begin` grant, runs
/// the user closure, and reports completion (or failure) to the scheduler.
fn thread_main(exec: Arc<Exec>, tid: usize, epoch: u64, body: Box<dyn FnOnce() + Send + 'static>) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: Arc::clone(&exec),
            tid,
            epoch,
        });
    });
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        offer(Op::Begin);
        body();
    }));
    let mut g = lock_inner(&exec);
    if let Err(payload) = result {
        if !payload.is::<ModelAbort>() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "modeled thread panicked (non-string payload)".to_string());
            fail_locked(&exec, &mut g, format!("thread {tid} panicked: {msg}"));
        }
    }
    g.status[tid] = Status::Finished;
    g.live -= 1;
    exec.cv.notify_all();
    drop(g);
    CTX.with(|c| c.borrow_mut().take());
}

/// One decision point of the DFS: the canonicalized list of grantable
/// threads and the index currently being explored.
struct Choice {
    opts: Vec<usize>,
    idx: usize,
}

fn describe_status(s: &Status) -> String {
    match s {
        Status::Embryo => "embryo (not yet started)".to_string(),
        Status::Ready(op) => format!("ready({op:?})"),
        Status::Running => "running".to_string(),
        Status::Waiting { cv, mutex } => format!("waiting(cv {cv}, mutex {mutex})"),
        Status::Finished => "finished".to_string(),
    }
}

fn failure_report(g: &ExecInner, msg: &str) -> String {
    let statuses: Vec<String> = g
        .status
        .iter()
        .enumerate()
        .map(|(t, s)| format!("  t{t}: {}", describe_status(s)))
        .collect();
    let tail: Vec<String> = g
        .trace
        .iter()
        .rev()
        .take(60)
        .rev()
        .map(|(t, op)| format!("  t{t}: {op:?}"))
        .collect();
    format!(
        "famg-model failure: {msg}\nthreads:\n{}\nschedule tail ({} of {} steps):\n{}",
        statuses.join("\n"),
        tail.len(),
        g.trace.len(),
        tail.join("\n")
    )
}

/// Runs one execution of `body` under the schedule prefix in `stack`,
/// extending `stack` at newly met choice points. Returns the steps taken.
fn run_one(
    bounds: &Bounds,
    body: Box<dyn FnOnce() + Send + 'static>,
    stack: &mut Vec<Choice>,
) -> usize {
    // ORDERING: Relaxed suffices — the epoch counter only needs uniqueness
    // (atomic RMW), not ordering with any other memory.
    let epoch = EPOCH.fetch_add(1, Ordering::Relaxed);
    let exec = Arc::new(Exec::new(bounds.clone()));
    {
        let mut g = lock_inner(&exec);
        let tid0 = Exec::register_thread(&mut g, Vec::new());
        debug_assert_eq!(tid0, 0);
    }
    let exec2 = Arc::clone(&exec);
    let os0 = std::thread::Builder::new()
        .name("famg-model-0".to_string())
        .spawn(move || thread_main(exec2, 0, epoch, body))
        .expect("failed to spawn famg-model main thread");
    exec.os_handles
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(os0);

    let mut prev: Option<usize> = None;
    let mut preemptions = 0usize;
    let mut cursor = 0usize;
    let failure: Option<String> = {
        let mut g = lock_inner(&exec);
        loop {
            // Quiesce: wait until no grant is outstanding, no thread is
            // mid-operation, and every registered thread has arrived at a
            // yield point, so statuses fully describe the state.
            while g.granted.is_some()
                || g.status
                    .iter()
                    .any(|s| matches!(s, Status::Running | Status::Embryo))
            {
                if g.aborting {
                    break;
                }
                g = exec
                    .cv
                    .wait(g)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if g.failure.is_some() || g.aborting {
                break g.failure.clone();
            }
            if g.live == 0 {
                break None; // every thread finished: execution complete
            }
            let runnable: Vec<usize> = g
                .status
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match s {
                    Status::Ready(op) if enabled(op, &g) => Some(t),
                    _ => None,
                })
                .collect();
            if runnable.is_empty() {
                // Threads exist but none can move: every thread is parked on
                // a mutex, condvar, or join — a deadlock (or lost wakeup).
                let msg = failure_report(&g, "deadlock: no runnable thread");
                fail_locked(&exec, &mut g, msg);
                break g.failure.clone();
            }
            // Canonical option order: the previously running thread first
            // (continuing it is free), then the rest by tid. Preemption
            // bounding filters switches that would exceed the budget.
            let prev_runnable = prev.is_some_and(|p| runnable.contains(&p));
            let opts: Vec<usize> = if prev_runnable {
                let p = prev.unwrap();
                let mut v = vec![p];
                if preemptions < bounds.preemption_bound {
                    v.extend(runnable.iter().copied().filter(|&t| t != p));
                }
                v
            } else {
                runnable
            };
            let chosen = if opts.len() == 1 {
                opts[0]
            } else if cursor < stack.len() {
                let c = &stack[cursor];
                assert_eq!(
                    c.opts, opts,
                    "famg-model: nondeterministic execution — replay produced a \
                     different choice set at decision {cursor}"
                );
                let t = c.opts[c.idx];
                cursor += 1;
                t
            } else {
                stack.push(Choice {
                    opts: opts.clone(),
                    idx: 0,
                });
                cursor += 1;
                opts[0]
            };
            if prev_runnable && chosen != prev.unwrap() {
                preemptions += 1;
            }
            g.steps += 1;
            if g.steps > bounds.max_steps {
                let msg = failure_report(
                    &g,
                    &format!("step bound exceeded ({} steps)", bounds.max_steps),
                );
                fail_locked(&exec, &mut g, msg);
                break g.failure.clone();
            }
            g.granted = Some(chosen);
            prev = Some(chosen);
            exec.cv.notify_all();
        }
    };

    if failure.is_some() {
        // Teardown: wake every parked thread so it unwinds with ModelAbort,
        // then join all OS threads before reporting.
        let mut g = lock_inner(&exec);
        g.aborting = true;
        exec.cv.notify_all();
        while g.live > 0 {
            g = exec
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(g);
    }
    let handles: Vec<_> = std::mem::take(
        &mut *exec
            .os_handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    for h in handles {
        let _ = h.join();
    }
    let g = lock_inner(&exec);
    if let Some(msg) = failure {
        let sched: Vec<String> = g.trace.iter().map(|(t, _)| t.to_string()).collect();
        panic!("{msg}\nfull schedule (tids): [{}]", sched.join(", "));
    }
    g.steps
}

/// Advances the DFS stack to the next unexplored schedule. Returns `false`
/// when the whole bounded space has been covered.
fn backtrack(stack: &mut Vec<Choice>) -> bool {
    while let Some(top) = stack.last_mut() {
        if top.idx + 1 < top.opts.len() {
            top.idx += 1;
            return true;
        }
        stack.pop();
    }
    false
}

/// Explores every interleaving of `f` within `bounds`, panicking with the
/// offending schedule on the first failure (assertion, data race, deadlock,
/// or exceeded bound). Returns exploration statistics on success.
pub fn model_with<F>(bounds: Bounds, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(bounds.max_threads >= 1, "max_threads must be at least 1");
    let f = Arc::new(f);
    let mut stack: Vec<Choice> = Vec::new();
    let mut schedules = 0usize;
    let mut max_steps_seen = 0usize;
    loop {
        let body = {
            let f = Arc::clone(&f);
            Box::new(move || f()) as Box<dyn FnOnce() + Send + 'static>
        };
        let steps = run_one(&bounds, body, &mut stack);
        max_steps_seen = max_steps_seen.max(steps);
        schedules += 1;
        assert!(
            schedules <= bounds.max_schedules,
            "famg-model: schedule bound exceeded ({} schedules) — the search \
             space is larger than max_schedules; raise the bound or shrink the model",
            bounds.max_schedules
        );
        if !backtrack(&mut stack) {
            break;
        }
    }
    Report {
        schedules,
        max_steps_seen,
    }
}

/// [`model_with`] under [`Bounds::default`].
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Bounds::default(), f)
}

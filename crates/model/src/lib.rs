//! Bounded interleaving model checker for famg's hand-rolled concurrency
//! primitives — an in-repo, dependency-free stand-in for `loom`.
//!
//! The workspace is hermetic (no registry access), so the one place where a
//! memory-ordering or lost-wakeup bug would silently corrupt every solve —
//! the rayon shim's worker pool — cannot be verified with the usual external
//! tools. This crate provides the minimum machinery to do it in-repo:
//!
//! * **Modeled primitives** ([`sync::Mutex`], [`sync::Condvar`],
//!   [`sync::atomic::AtomicUsize`], [`thread::spawn`]/[`thread::JoinHandle`],
//!   [`RaceCell`]) that route every visible operation through a central
//!   scheduler. Code under test swaps `std::sync` for these via a `cfg`
//!   facade (`--cfg famg_model` in the rayon shim).
//! * **A DFS scheduler** ([`model`] / [`model_with`]) that runs the test
//!   closure repeatedly, enumerating thread interleavings exhaustively up to
//!   explicit bounds (threads, steps per execution, schedules, and a
//!   CHESS-style *preemption bound*). Every execution is sequentially
//!   consistent; within each explored execution the checker validates the
//!   *declared* weaker orderings (below).
//! * **A happens-before checker**: per-thread vector clocks, advanced by
//!   mutex hand-offs, spawn/join edges, and Release→Acquire atomic pairs
//!   (including release sequences through relaxed RMWs). [`RaceCell`] reads
//!   and writes assert the accessing thread is ordered after the last write
//!   — so a `Relaxed` store that *should* have been `Release` produces a
//!   reported data race even though the interleaving itself read the right
//!   value under sequential consistency.
//! * **Deadlock detection**: an execution in which unfinished threads exist
//!   but none is runnable (all parked on mutexes/condvars/joins) fails with
//!   the full schedule trace — this is how lost-wakeup bugs surface.
//!
//! # What it does *not* model
//!
//! * Weak-memory *reorderings*: loads always observe the latest store of the
//!   sequentially consistent interleaving. Ordering bugs are caught through
//!   the happens-before check on [`RaceCell`] data, not by simulating stale
//!   reads.
//! * Spurious condvar wakeups (all the code under test waits in re-checking
//!   loops, which the interleaving search already exercises).
//! * Schedules with more preemptions than [`Bounds::preemption_bound`]
//!   (exhaustive below the bound; empirically this finds the overwhelming
//!   majority of concurrency bugs — the CHESS result).
//!
//! # Example
//!
//! ```
//! use famg_model::{model, sync::atomic::{AtomicUsize, Ordering}, RaceCell};
//! use std::sync::Arc;
//!
//! model(|| {
//!     let data = Arc::new(RaceCell::new(0));
//!     let flag = Arc::new(AtomicUsize::new(0));
//!     let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
//!     let h = famg_model::thread::spawn(move || {
//!         d.write(42);
//!         // ORDERING: Release publishes the write above to the Acquire
//!         // load below; the model checker fails if this were Relaxed.
//!         f.store(1, Ordering::Release);
//!     });
//!     // ORDERING: Acquire pairs with the Release store above.
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.read(), 42);
//!     }
//!     h.join().unwrap();
//! });
//! ```

mod cell;
mod sched;
pub mod sync;
pub mod thread;

pub use cell::RaceCell;
pub use sched::{in_model, model, model_with, Bounds, Report};

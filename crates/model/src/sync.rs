//! Modeled replacements for the `std::sync` surface the rayon shim uses.
//!
//! Each primitive lazily registers itself with the active execution on
//! first use, then funnels every operation through the scheduler
//! ([`crate::sched::offer`]). API shapes mirror `std` closely enough that
//! code written against `std::sync` compiles unchanged behind a
//! `cfg(famg_model)` import swap (`lock().unwrap()`, `cv.wait(g).unwrap()`).
//!
//! Objects must be created *inside* the model closure: each execution gets
//! a fresh registry, and an object carried across executions would smuggle
//! state between schedules. Doing so fails with a pointed panic.

use crate::sched::{offer, with_ctx, Op};
use std::cell::UnsafeCell;

/// Modeled atomics; `Ordering` is re-exported from `std` so call sites are
/// source-identical.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::ObjId;
    use crate::sched::{offer, Op, Rmw};

    /// Modeled `AtomicUsize`: sequentially consistent value semantics, with
    /// the *declared* ordering fed to the happens-before checker.
    #[derive(Debug)]
    pub struct AtomicUsize {
        init: usize,
        id: ObjId,
    }

    impl AtomicUsize {
        /// Creates a new modeled atomic holding `v`.
        pub fn new(v: usize) -> AtomicUsize {
            AtomicUsize {
                init: v,
                id: ObjId::new(),
            }
        }

        fn id(&self) -> usize {
            self.id
                .get_or_register(|exec| exec.register_atomic(self.init))
        }

        /// Modeled `load`.
        pub fn load(&self, ord: Ordering) -> usize {
            offer(Op::AtomicLoad { id: self.id(), ord })
        }

        /// Modeled `store`.
        pub fn store(&self, val: usize, ord: Ordering) {
            offer(Op::AtomicStore {
                id: self.id(),
                ord,
                val,
            });
        }

        /// Modeled `fetch_add`; returns the previous value.
        pub fn fetch_add(&self, n: usize, ord: Ordering) -> usize {
            offer(Op::AtomicRmw {
                id: self.id(),
                ord,
                rmw: Rmw::Add(n),
            })
        }

        /// Modeled `fetch_sub`; returns the previous value.
        pub fn fetch_sub(&self, n: usize, ord: Ordering) -> usize {
            offer(Op::AtomicRmw {
                id: self.id(),
                ord,
                rmw: Rmw::Sub(n),
            })
        }

        /// Modeled `swap`; returns the previous value.
        pub fn swap(&self, val: usize, ord: Ordering) -> usize {
            offer(Op::AtomicRmw {
                id: self.id(),
                ord,
                rmw: Rmw::Swap(val),
            })
        }
    }
}

/// Per-object lazy registration: the id is valid for exactly one execution
/// (epoch); reuse across executions is a model misuse and panics.
#[derive(Debug, Default)]
pub(crate) struct ObjId {
    slot: std::sync::Mutex<Option<(u64, usize)>>,
}

impl ObjId {
    pub(crate) fn new() -> ObjId {
        ObjId {
            slot: std::sync::Mutex::new(None),
        }
    }

    pub(crate) fn get_or_register(
        &self,
        register: impl FnOnce(&crate::sched::Exec) -> usize,
    ) -> usize {
        with_ctx(|ctx| {
            let mut slot = self
                .slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match *slot {
                Some((epoch, id)) if epoch == ctx.epoch => id,
                Some(_) => panic!(
                    "famg-model object reused across executions — create every modeled \
                     Mutex/Condvar/atomic/RaceCell inside the model closure"
                ),
                None => {
                    let id = register(&ctx.exec);
                    *slot = Some((ctx.epoch, id));
                    id
                }
            }
        })
    }
}

/// Error half of [`LockResult`]. The model never poisons locks; the type
/// exists so `lock().unwrap()` call sites compile against both `std` and
/// the model.
#[derive(Debug)]
pub struct Poison;

/// Mirror of `std::sync::LockResult` (always `Ok` in the model).
pub type LockResult<G> = Result<G, Poison>;

/// Modeled `Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    data: UnsafeCell<T>,
    id: ObjId,
}

// SAFETY: the scheduler grants `MutexLock` only while no other thread holds
// the mutex, and all modeled threads are serialized (at most one runs user
// code at a time), so access to `data` through a held guard is exclusive.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — the modeled lock protocol guarantees exclusive access.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a new modeled mutex holding `v`.
    pub fn new(v: T) -> Mutex<T> {
        Mutex {
            data: UnsafeCell::new(v),
            id: ObjId::new(),
        }
    }

    fn id(&self) -> usize {
        self.id.get_or_register(crate::sched::Exec::register_mutex)
    }

    /// Modeled `lock`: a scheduler yield point; parks while another thread
    /// holds the lock.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let id = self.id();
        offer(Op::MutexLock { id });
        Ok(MutexGuard { lock: self, id })
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

/// Guard returned by [`Mutex::lock`]; unlocks (a yield point) on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    id: usize,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves this thread holds the modeled lock, so
        // no other thread can touch `data` until the guard drops.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as for `Deref` — the modeled lock is held exclusively.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // During unwinding the execution is already condemned (user panic or
        // teardown abort) and the scheduler grants nothing further;
        // re-entering it here would park forever or panic in a destructor.
        if std::thread::panicking() {
            return;
        }
        offer(Op::MutexUnlock { id: self.id });
    }
}

/// Modeled `Condvar` supporting `wait` and `notify_all` (the only condvar
/// surface the pool shim uses). No spurious wakeups are modeled; waiters
/// wake only on a notify, which is exactly what exposes lost-wakeup bugs.
#[derive(Debug, Default)]
pub struct Condvar {
    id: ObjId,
}

impl Condvar {
    /// Creates a new modeled condvar.
    pub fn new() -> Condvar {
        Condvar { id: ObjId::new() }
    }

    fn id(&self) -> usize {
        self.id.get_or_register(crate::sched::Exec::register_cv)
    }

    /// Modeled `wait`: atomically releases the guard's mutex and parks until
    /// a `notify_all`, then re-acquires the mutex before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let cv = self.id();
        let mutex_id = guard.id;
        let lock = guard.lock;
        // The wait op releases the mutex itself; skip the guard's unlock.
        std::mem::forget(guard);
        offer(Op::CvWait {
            cv,
            mutex: mutex_id,
        });
        Ok(MutexGuard { lock, id: mutex_id })
    }

    /// Modeled `notify_all`: every current waiter becomes runnable (pending
    /// mutex re-acquisition). Notifying with no waiters is a no-op — the
    /// signal is *not* latched, matching real condvars.
    pub fn notify_all(&self) {
        let cv = self.id();
        offer(Op::CvNotifyAll { cv });
    }
}

//! [`RaceCell`]: plain shared data with a happens-before checker attached.
//!
//! This is the probe that turns the interleaving search into an *ordering*
//! checker. Model tests write a `RaceCell` on one thread and read it on
//! another; every access asserts the accessing thread is ordered (by the
//! vector clocks the scheduler maintains) after the last write. If the code
//! under test publishes the cell through an atomic whose declared ordering
//! is too weak — say a `Relaxed` store where a `Release` is required — the
//! read still sees the right *value* under the sequentially consistent
//! interleaving, but the happens-before check fails and the run reports a
//! data race with the offending schedule.

use crate::sched::{offer, with_ctx, Op};
use crate::sync::ObjId;
use std::cell::UnsafeCell;

/// Shared plain data under happens-before race checking. `T: Copy` keeps
/// accesses trivially atomic at the model level (the scheduler serializes
/// all modeled threads, so there is no real tearing).
#[derive(Debug)]
pub struct RaceCell<T: Copy> {
    data: UnsafeCell<T>,
    id: ObjId,
}

// SAFETY: all access goes through `read`/`write`, which are scheduler yield
// points; modeled threads are serialized, so the underlying accesses never
// physically race (logical races are detected and reported instead).
unsafe impl<T: Copy + Send> Send for RaceCell<T> {}
// SAFETY: as above.
unsafe impl<T: Copy + Send> Sync for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    /// Creates a cell owned (in the happens-before sense) by the creating
    /// thread: accesses by other threads must be ordered after creation.
    pub fn new(v: T) -> RaceCell<T> {
        RaceCell {
            data: UnsafeCell::new(v),
            id: ObjId::new(),
        }
    }

    fn id(&self) -> usize {
        self.id.get_or_register(|exec| {
            let clock = with_ctx(|ctx| exec.creator_clock(ctx.tid));
            exec.register_cell(clock)
        })
    }

    /// Reads the value, asserting the read is ordered after the last write.
    pub fn read(&self) -> T {
        offer(Op::CellRead { id: self.id() });
        // SAFETY: modeled threads are serialized by the scheduler; the
        // happens-before check above reported any logical race already.
        unsafe { *self.data.get() }
    }

    /// Writes the value, asserting the write is ordered after the last
    /// write *and* every prior read.
    pub fn write(&self, v: T) {
        offer(Op::CellWrite { id: self.id() });
        // SAFETY: as for `read` — physically serialized, logically checked.
        unsafe { *self.data.get() = v };
    }
}

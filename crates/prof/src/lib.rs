//! Hierarchical span profiler for famg.
//!
//! The paper's whole argument is component-level timing (Fig. 5/6 break
//! setup and solve into Strength+Coarsen / Interp / RAP and GS / SpMV /
//! BLAS1 buckets), so instrumentation is a first-class subsystem here
//! rather than ad-hoc `Instant::now()` bookkeeping scattered through the
//! solver. The model follows HPCToolkit-style hierarchical attribution:
//!
//! * [`scope`] / [`scope_at`] open an RAII span on a **thread-local**
//!   span stack; dropping the guard closes it. Spans nest, and repeated
//!   `(name, level)` pairs under the same parent merge into one node
//!   accumulating wall time and an invocation count.
//! * [`counter`] attaches an integer delta (flops, comm bytes, comm
//!   messages, ...) to the innermost open span. Deltas are attributed
//!   exactly once — to the span that was open when they were recorded —
//!   so rollups never double-count nested scopes.
//! * [`take`] drains everything the current thread recorded into a
//!   [`Profile`]: the merged aggregate tree plus a bounded raw event
//!   timeline for chrome://tracing export.
//!
//! Collection is gated behind the default-on `prof` feature. With the
//! feature disabled, [`Scope`] is a zero-sized unit type, every entry
//! point compiles to an empty body, and only the passive data model
//! (`SpanNode` / `Profile` / [`json::Json`]) remains so downstream APIs
//! keep their shape.
//!
//! Contract for embedders: a subsystem that wants its own profile (e.g.
//! an AMG setup or a solve driver) opens a root span, closes it, and
//! calls [`take`]. `take` refuses to drain while spans are still open
//! (it returns an empty profile and debug-asserts), so do not call it
//! from inside an open scope, and do not wrap such a subsystem call in
//! your own open span if you expect the subsystem to capture its
//! profile — the inner `take` would see your open span and back off.

pub mod json;

use std::collections::BTreeMap;
use std::time::Duration;

/// Sentinel meaning "no multigrid level attached to this span".
pub const NO_LEVEL: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Passive data model — always compiled, feature-independent.
// ---------------------------------------------------------------------------

/// One node of the merged span tree: a `(name, level)` pair aggregated
/// over every invocation under the same parent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Static span name (e.g. `"interp"`, `"smooth"`).
    pub name: &'static str,
    /// Multigrid level the span is attached to, [`NO_LEVEL`] if none.
    pub level: usize,
    /// Total wall time across all invocations.
    pub wall: Duration,
    /// Number of invocations merged into this node.
    pub count: u64,
    /// Counter deltas attributed to this span (not descendants).
    pub counters: BTreeMap<&'static str, u64>,
    /// Child spans in first-open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall time spent in this span but outside all child spans
    /// (saturating: measurement jitter can make children sum past the
    /// parent by nanoseconds).
    pub fn self_time(&self) -> Duration {
        let children: Duration = self.children.iter().map(|c| c.wall).sum();
        self.wall.checked_sub(children).unwrap_or(Duration::ZERO)
    }

    /// First descendant (depth-first, including `self`) named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Sum of counter `name` over this span and all descendants.
    pub fn total_counter(&self, name: &str) -> u64 {
        let own = self.counters.get(name).copied().unwrap_or(0);
        own + self
            .children
            .iter()
            .map(|c| c.total_counter(name))
            .sum::<u64>()
    }

    /// Depth-first pre-order visit of this span and all descendants.
    pub fn visit(&self, f: &mut impl FnMut(&SpanNode)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }
}

/// One closed span occurrence on the raw timeline (for trace export).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Span name.
    pub name: &'static str,
    /// Multigrid level, [`NO_LEVEL`] if none.
    pub level: usize,
    /// Start offset from the collector epoch (first span opened).
    pub start: Duration,
    /// Duration of this occurrence.
    pub dur: Duration,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
}

/// Cap on retained raw events per thread; past it, occurrences still
/// merge into the aggregate tree but are dropped from the timeline.
pub const EVENT_CAP: usize = 1 << 18;

/// Everything one thread recorded between two [`take`] calls.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Merged aggregate trees, one per top-level span, in open order.
    pub roots: Vec<SpanNode>,
    /// Raw closed-span timeline (bounded by [`EVENT_CAP`]).
    pub events: Vec<Event>,
    /// Occurrences dropped from `events` after the cap was hit.
    pub dropped_events: u64,
}

impl Profile {
    /// First top-level span named `name`, if any.
    pub fn find_root(&self, name: &str) -> Option<&SpanNode> {
        self.roots.iter().find(|r| r.name == name)
    }

    /// Total wall time across all top-level spans.
    pub fn wall(&self) -> Duration {
        self.roots.iter().map(|r| r.wall).sum()
    }

    /// Sum of counter `name` over every span in the profile.
    pub fn total_counter(&self, name: &str) -> u64 {
        self.roots.iter().map(|r| r.total_counter(name)).sum()
    }

    /// Renders the raw event timeline as a chrome://tracing JSON array
    /// document (load via `chrome://tracing` or <https://ui.perfetto.dev>).
    /// `pid` distinguishes processes (simulated MPI ranks); all events of
    /// one profile share `tid` 0 because collection is per-thread.
    pub fn to_chrome_trace(&self, pid: u64) -> String {
        use json::Json;
        let mut events = Vec::with_capacity(self.events.len());
        for e in &self.events {
            let mut obj = vec![
                ("name".to_string(), Json::Str(e.name.to_string())),
                ("cat".to_string(), Json::Str("famg".to_string())),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("ts".to_string(), Json::Num(e.start.as_secs_f64() * 1e6)),
                ("dur".to_string(), Json::Num(e.dur.as_secs_f64() * 1e6)),
                ("pid".to_string(), Json::Num(pid as f64)),
                ("tid".to_string(), Json::Num(0.0)),
            ];
            if e.level != NO_LEVEL {
                obj.push((
                    "args".to_string(),
                    Json::Obj(vec![("level".to_string(), Json::Num(e.level as f64))]),
                ));
            }
            events.push(Json::Obj(obj));
        }
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        ])
        .dump()
    }
}

// ---------------------------------------------------------------------------
// Collection — real implementation behind the `prof` feature.
// ---------------------------------------------------------------------------

#[cfg(feature = "prof")]
mod collect {
    use super::{Event, Profile, SpanNode, EVENT_CAP, NO_LEVEL};
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::time::{Duration, Instant};

    struct Node {
        name: &'static str,
        level: usize,
        wall: Duration,
        count: u64,
        counters: BTreeMap<&'static str, u64>,
        children: Vec<usize>,
    }

    struct Collector {
        /// Arena; index 0 is the virtual root whose children are the
        /// profile's top-level spans.
        arena: Vec<Node>,
        /// Open spans: (arena id, open instant).
        stack: Vec<(usize, Instant)>,
        events: Vec<Event>,
        dropped_events: u64,
        /// Instant of the first span opened since the last drain.
        epoch: Option<Instant>,
    }

    impl Collector {
        fn new() -> Self {
            Collector {
                arena: vec![Node {
                    name: "",
                    level: NO_LEVEL,
                    wall: Duration::ZERO,
                    count: 0,
                    counters: BTreeMap::new(),
                    children: Vec::new(),
                }],
                stack: Vec::new(),
                events: Vec::new(),
                dropped_events: 0,
                epoch: None,
            }
        }

        fn open(&mut self, name: &'static str, level: usize) {
            let now = Instant::now();
            if self.epoch.is_none() {
                self.epoch = Some(now);
            }
            let parent = self.stack.last().map_or(0, |&(id, _)| id);
            // Merge by (name, level) under the same parent.
            let id = self.arena[parent]
                .children
                .iter()
                .copied()
                .find(|&c| self.arena[c].name == name && self.arena[c].level == level)
                .unwrap_or_else(|| {
                    let id = self.arena.len();
                    self.arena.push(Node {
                        name,
                        level,
                        wall: Duration::ZERO,
                        count: 0,
                        counters: BTreeMap::new(),
                        children: Vec::new(),
                    });
                    self.arena[parent].children.push(id);
                    id
                });
            self.stack.push((id, now));
        }

        fn close(&mut self) {
            let Some((id, t0)) = self.stack.pop() else {
                debug_assert!(false, "famg-prof: span guard dropped with no open span");
                return;
            };
            let dur = t0.elapsed();
            let node = &mut self.arena[id];
            node.wall += dur;
            node.count += 1;
            if self.events.len() < EVENT_CAP {
                let epoch = self.epoch.expect("epoch set when first span opened");
                self.events.push(Event {
                    name: node.name,
                    level: node.level,
                    start: t0.duration_since(epoch),
                    dur,
                    depth: self.stack.len(),
                });
            } else {
                self.dropped_events += 1;
            }
        }

        fn counter(&mut self, name: &'static str, delta: u64) {
            if let Some(&(id, _)) = self.stack.last() {
                *self.arena[id].counters.entry(name).or_insert(0) += delta;
            }
        }

        fn to_span(&self, id: usize) -> SpanNode {
            let n = &self.arena[id];
            SpanNode {
                name: n.name,
                level: n.level,
                wall: n.wall,
                count: n.count,
                counters: n.counters.clone(),
                children: n.children.iter().map(|&c| self.to_span(c)).collect(),
            }
        }

        fn take(&mut self) -> Profile {
            debug_assert!(
                self.stack.is_empty(),
                "famg-prof: take() called with {} span(s) still open",
                self.stack.len()
            );
            if !self.stack.is_empty() {
                // Refuse to drain mid-span: the caller would get a
                // truncated tree and the open guards would pop into a
                // reset arena. Keep recording; return nothing.
                return Profile::default();
            }
            let roots = self.arena[0]
                .children
                .clone()
                .iter()
                .map(|&c| self.to_span(c))
                .collect();
            let profile = Profile {
                roots,
                events: std::mem::take(&mut self.events),
                dropped_events: std::mem::take(&mut self.dropped_events),
            };
            self.arena.truncate(1);
            self.arena[0].children.clear();
            self.arena[0].counters.clear();
            self.epoch = None;
            profile
        }
    }

    thread_local! {
        static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::new());
    }

    /// RAII span guard: the span closes when the guard drops. Guards are
    /// zero-sized; the open instant lives on the thread-local stack, so
    /// guards must drop in LIFO order (the borrow checker enforces this
    /// for lexically scoped guards).
    #[derive(Debug)]
    pub struct Scope(());

    impl Drop for Scope {
        fn drop(&mut self) {
            COLLECTOR.with(|c| c.borrow_mut().close());
        }
    }

    /// Opens a span with no level attached.
    #[must_use = "the span ends when the guard drops"]
    pub fn scope(name: &'static str) -> Scope {
        scope_at(name, NO_LEVEL)
    }

    /// Opens a span attached to multigrid level `level`.
    #[must_use = "the span ends when the guard drops"]
    pub fn scope_at(name: &'static str, level: usize) -> Scope {
        COLLECTOR.with(|c| c.borrow_mut().open(name, level));
        Scope(())
    }

    /// Adds `delta` to counter `name` on the innermost open span.
    /// Dropped silently if no span is open.
    pub fn counter(name: &'static str, delta: u64) {
        if delta > 0 {
            COLLECTOR.with(|c| c.borrow_mut().counter(name, delta));
        }
    }

    /// Drains everything this thread recorded since the last `take` into
    /// a [`Profile`]. Must be called with no spans open (debug-asserts
    /// and returns an empty profile otherwise).
    pub fn take() -> Profile {
        COLLECTOR.with(|c| c.borrow_mut().take())
    }

    /// Whether span collection is compiled in.
    pub const fn enabled() -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Collection — zero-cost stubs when the `prof` feature is off.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "prof"))]
mod collect {
    use super::Profile;

    /// Inert span guard: zero-sized, no `Drop` impl, no effect.
    #[derive(Debug)]
    pub struct Scope(pub(super) ());

    /// No-op; collection is compiled out.
    #[must_use = "the span ends when the guard drops"]
    #[inline(always)]
    pub fn scope(_name: &'static str) -> Scope {
        Scope(())
    }

    /// No-op; collection is compiled out.
    #[must_use = "the span ends when the guard drops"]
    #[inline(always)]
    pub fn scope_at(_name: &'static str, _level: usize) -> Scope {
        Scope(())
    }

    /// No-op; collection is compiled out.
    #[inline(always)]
    pub fn counter(_name: &'static str, _delta: u64) {}

    /// Always returns an empty profile; collection is compiled out.
    #[inline(always)]
    pub fn take() -> Profile {
        Profile::default()
    }

    /// Whether span collection is compiled in.
    pub const fn enabled() -> bool {
        false
    }
}

pub use collect::{counter, enabled, scope, scope_at, take, Scope};

#[cfg(all(test, feature = "prof"))]
mod tests {
    use super::*;

    #[test]
    fn spans_merge_by_name_and_level() {
        let _ = take();
        for _ in 0..3 {
            let _outer = scope("setup");
            for lvl in 0..2 {
                let _inner = scope_at("interp", lvl);
            }
        }
        let p = take();
        assert_eq!(p.roots.len(), 1);
        let root = &p.roots[0];
        assert_eq!(root.name, "setup");
        assert_eq!(root.count, 3);
        assert_eq!(root.children.len(), 2, "one merged child per level");
        for (lvl, c) in root.children.iter().enumerate() {
            assert_eq!(c.name, "interp");
            assert_eq!(c.level, lvl);
            assert_eq!(c.count, 3);
        }
        assert_eq!(p.events.len(), 3 + 6);
        assert_eq!(p.dropped_events, 0);
    }

    #[test]
    fn counters_attach_to_innermost_open_span_once() {
        let _ = take();
        {
            let _outer = scope("solve");
            {
                let _inner = scope_at("smooth", 0);
                counter("flops", 100);
            }
            counter("flops", 10);
        }
        let p = take();
        let root = &p.roots[0];
        assert_eq!(root.counters.get("flops"), Some(&10));
        assert_eq!(root.children[0].counters.get("flops"), Some(&100));
        // total_counter sums each delta exactly once despite nesting.
        assert_eq!(root.total_counter("flops"), 110);
        assert_eq!(p.total_counter("flops"), 110);
    }

    #[test]
    fn self_time_excludes_children_and_saturates() {
        let _ = take();
        {
            let _outer = scope("a");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = scope("b");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let p = take();
        let a = &p.roots[0];
        let b = &a.children[0];
        assert!(a.wall >= b.wall);
        assert!(
            a.self_time()
                <= a.wall.checked_sub(b.wall).unwrap() + std::time::Duration::from_millis(1)
        );
        // Saturation: a fabricated child longer than its parent.
        let fake = SpanNode {
            wall: std::time::Duration::from_secs(1),
            children: vec![SpanNode {
                wall: std::time::Duration::from_secs(2),
                ..SpanNode::default()
            }],
            ..SpanNode::default()
        };
        assert_eq!(fake.self_time(), std::time::Duration::ZERO);
    }

    #[test]
    fn take_refuses_to_drain_with_open_spans() {
        let _ = take();
        let guard = scope("open");
        // Snapshot attempt mid-span must not tear the tree down. The
        // debug_assert fires under `cfg(debug_assertions)`, so exercise
        // the fallback only in release tests.
        if cfg!(not(debug_assertions)) {
            let p = take();
            assert!(p.roots.is_empty());
        }
        drop(guard);
        let p = take();
        assert_eq!(p.roots.len(), 1);
    }

    #[test]
    fn find_and_visit_walk_the_tree() {
        let _ = take();
        {
            let _a = scope("setup");
            let _b = scope_at("rap", 1);
        }
        let p = take();
        let root = p.find_root("setup").unwrap();
        assert_eq!(root.find("rap").unwrap().level, 1);
        assert!(root.find("absent").is_none());
        let mut names = Vec::new();
        root.visit(&mut |n| names.push(n.name));
        assert_eq!(names, vec!["setup", "rap"]);
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let _ = take();
        {
            let _a = scope("setup");
            let _b = scope_at("interp", 2);
        }
        let p = take();
        let trace = p.to_chrome_trace(7);
        assert!(trace.starts_with('{'));
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"name\":\"interp\""));
        assert!(trace.contains("\"pid\":7"));
        assert!(trace.contains("\"level\":2"));
        // Events close child-first: the inner span is recorded before
        // the outer one.
        assert_eq!(p.events[0].name, "interp");
        assert_eq!(p.events[0].depth, 1);
        assert_eq!(p.events[1].name, "setup");
        assert_eq!(p.events[1].depth, 0);
    }
}

#[cfg(all(test, not(feature = "prof")))]
mod disabled_tests {
    use super::*;

    #[test]
    fn disabled_scope_is_zero_sized() {
        assert_eq!(std::mem::size_of::<Scope>(), 0);
        assert!(!enabled());
    }

    #[test]
    fn disabled_take_is_empty() {
        let _g = scope("anything");
        let _h = scope_at("else", 3);
        counter("flops", 123);
        let p = take();
        assert!(p.roots.is_empty());
        assert!(p.events.is_empty());
        assert_eq!(p.total_counter("flops"), 0);
    }
}

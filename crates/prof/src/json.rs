//! Minimal JSON document builder used by the telemetry exporters.
//!
//! Writing-only (the parser lives in `famg-check`, which validates the
//! emitted documents); no external dependencies. Object member order is
//! preserved so emitted reports diff cleanly.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number. Integral values within `2^53` print without a
    /// fractional part so counters stay exact and diffable.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an integer value.
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Serializes the value as compact JSON.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation (stable across runs, so
    /// committed baselines diff line-by-line).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    use std::fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/Inf; clamp to null like most serializers.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-roundtrip float formatting.
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escapes() {
        assert_eq!(Json::Null.dump(), "null");
        assert_eq!(Json::Bool(true).dump(), "true");
        assert_eq!(Json::int(42).dump(), "42");
        assert_eq!(Json::Num(1.5).dump(), "1.5");
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".to_string()).dump(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(3.0).dump(), "3");
        assert_eq!(Json::Num(-2.0).dump(), "-2");
        assert_eq!(Json::int(u64::MAX / 4096).dump(), "4503599627370495");
    }

    #[test]
    fn compound_values_preserve_order() {
        let doc = Json::Obj(vec![
            ("z".to_string(), Json::int(1)),
            (
                "a".to_string(),
                Json::Arr(vec![Json::int(1), Json::Str("x".to_string())]),
            ),
        ]);
        assert_eq!(doc.dump(), "{\"z\":1,\"a\":[1,\"x\"]}");
    }

    #[test]
    fn pretty_output_is_indented_and_stable() {
        let doc = Json::Obj(vec![
            ("n".to_string(), Json::int(1)),
            ("o".to_string(), Json::Obj(vec![])),
            ("a".to_string(), Json::Arr(vec![Json::int(2)])),
        ]);
        let expected = "{\n  \"n\": 1,\n  \"o\": {},\n  \"a\": [\n    2\n  ]\n}\n";
        assert_eq!(doc.pretty(), expected);
    }
}

//! Reservoir pressure solve: an ill-conditioned Poisson-like system with
//! a highly discontinuous permeability field (the paper's strong-scaling
//! workload), solved with FGMRES preconditioned by one AMG V-cycle —
//! then time-stepped: the permeability drifts each step and each step
//! carries several right-hand sides (wells), so the setup is refreshed
//! in place (frozen pattern, numeric passes only) and the RHS batch is
//! solved with one k-wide V-cycle per iteration.
//!
//! ```sh
//! cargo run --release --example reservoir
//! ```

use famg::core::{AmgConfig, AmgSolver};
use famg::krylov::{fgmres, FgmresOptions};
use famg::matgen::{reservoir_field, rhs, varcoef3d_7pt};
use famg::sparse::MultiVec;

fn main() {
    let (nx, ny, nz) = (48, 48, 24);
    // Layered lognormal permeability spanning several orders of magnitude.
    let k = reservoir_field(nx, ny, nz, 8, 3.0, 2, 2026);
    let kmin = k.iter().copied().fold(f64::MAX, f64::min);
    let kmax = k.iter().copied().fold(f64::MIN, f64::max);
    println!(
        "permeability contrast: {:.1e} (min {:.2e}, max {:.2e})",
        kmax / kmin,
        kmin,
        kmax
    );
    let a = varcoef3d_7pt(nx, ny, nz, &k);
    let b = rhs::ones(a.nrows());
    println!("system: {} unknowns, {} nnz", a.nrows(), a.nnz());

    // AMG as a preconditioner (Table 4 style), tolerance 1e-5 as in the
    // paper's strong-scaling experiment.
    let cfg = AmgConfig {
        tolerance: 1e-5,
        ..AmgConfig::multi_node_ei4()
    };
    let amg = AmgSolver::setup(&a, &cfg);
    println!(
        "AMG hierarchy: {} levels, operator complexity {:.2}",
        amg.hierarchy().num_levels(),
        amg.hierarchy().stats.operator_complexity()
    );

    let pre = |r: &[f64], z: &mut [f64]| amg.apply(r, z);
    let mut x = vec![0.0; a.nrows()];
    let opts = FgmresOptions {
        tolerance: 1e-5,
        max_iterations: 200,
        restart: 50,
    };
    let res = fgmres(&a, &b, &mut x, &pre, &opts);
    println!(
        "FGMRES+AMG: {} iterations, relres {:.2e}, converged: {}",
        res.iterations, res.final_relres, res.converged
    );
    assert!(res.converged);

    // Compare with unpreconditioned FGMRES to show why AMG matters here.
    let mut x0 = vec![0.0; a.nrows()];
    let plain = fgmres(
        &a,
        &b,
        &mut x0,
        &famg::krylov::IdentityPrecond,
        &FgmresOptions {
            max_iterations: res.iterations * 10,
            ..opts
        },
    );
    println!(
        "unpreconditioned FGMRES after {}x the iterations: relres {:.2e} (converged: {})",
        10, plain.final_relres, plain.converged
    );

    // -- time stepping: coefficient drift + batched multi-well solves --
    // Each step the geology drifts slightly (same sparsity pattern) and
    // four well configurations need pressure solves. The refreshable
    // setup absorbs the new values without redoing any pattern work, and
    // solve_batch advances all four RHS through shared V-cycles; each
    // column is bitwise identical to solving it alone (DESIGN.md §9).
    println!("\ntime stepping: numeric refresh + 4-wide batched solves");
    let n = a.nrows();
    let scfg = AmgConfig {
        tolerance: 1e-5,
        ..AmgConfig::single_node_paper()
    };
    let mut solver = AmgSolver::setup_refreshable(&a, &scfg);
    // Four well patterns: point sources at different reservoir corners.
    let wells: Vec<Vec<f64>> = (0..4)
        .map(|w| {
            let mut bw = vec![0.0; n];
            let (ix, iy) = (1 + (w % 2) * (nx - 3), 1 + (w / 2) * (ny - 3));
            bw[(nz / 2) * nx * ny + iy * nx + ix] = 1.0;
            bw
        })
        .collect();
    let bb = MultiVec::from_columns(&wells);
    for step in 1..=3usize {
        // Smooth multiplicative drift, small enough that no frozen
        // threshold decision flips (the refresh contract's regime).
        let kt: Vec<f64> = k
            .iter()
            .enumerate()
            .map(|(i, &ki)| {
                let xf = (i % nx) as f64 / nx as f64;
                ki * (1.0 + 1e-5 * step as f64 * (9.0 * xf).cos())
            })
            .collect();
        let at = varcoef3d_7pt(nx, ny, nz, &kt);
        solver
            .refresh(&at)
            .expect("same-pattern drift must refresh");
        let mut xb = MultiVec::new(n, 4);
        let batch = solver.solve_batch(&bb, &mut xb);
        assert!(
            batch.all_converged(),
            "step {step}: a well did not converge"
        );
        println!(
            "  step {step}: refreshed + solved {} wells in {:?} V-cycles (max relres {:.2e})",
            batch.k(),
            batch.iterations,
            batch.final_relres.iter().copied().fold(f64::MIN, f64::max)
        );
    }
}

//! Reservoir pressure solve: an ill-conditioned Poisson-like system with
//! a highly discontinuous permeability field (the paper's strong-scaling
//! workload), solved with FGMRES preconditioned by one AMG V-cycle.
//!
//! ```sh
//! cargo run --release --example reservoir
//! ```

use famg::core::{AmgConfig, AmgSolver};
use famg::krylov::{fgmres, FgmresOptions};
use famg::matgen::{reservoir_field, rhs, varcoef3d_7pt};

fn main() {
    let (nx, ny, nz) = (48, 48, 24);
    // Layered lognormal permeability spanning several orders of magnitude.
    let k = reservoir_field(nx, ny, nz, 8, 3.0, 2, 2026);
    let kmin = k.iter().copied().fold(f64::MAX, f64::min);
    let kmax = k.iter().copied().fold(f64::MIN, f64::max);
    println!(
        "permeability contrast: {:.1e} (min {:.2e}, max {:.2e})",
        kmax / kmin,
        kmin,
        kmax
    );
    let a = varcoef3d_7pt(nx, ny, nz, &k);
    let b = rhs::ones(a.nrows());
    println!("system: {} unknowns, {} nnz", a.nrows(), a.nnz());

    // AMG as a preconditioner (Table 4 style), tolerance 1e-5 as in the
    // paper's strong-scaling experiment.
    let cfg = AmgConfig {
        tolerance: 1e-5,
        ..AmgConfig::multi_node_ei4()
    };
    let amg = AmgSolver::setup(&a, &cfg);
    println!(
        "AMG hierarchy: {} levels, operator complexity {:.2}",
        amg.hierarchy().num_levels(),
        amg.hierarchy().stats.operator_complexity()
    );

    let pre = |r: &[f64], z: &mut [f64]| amg.apply(r, z);
    let mut x = vec![0.0; a.nrows()];
    let opts = FgmresOptions {
        tolerance: 1e-5,
        max_iterations: 200,
        restart: 50,
    };
    let res = fgmres(&a, &b, &mut x, &pre, &opts);
    println!(
        "FGMRES+AMG: {} iterations, relres {:.2e}, converged: {}",
        res.iterations, res.final_relres, res.converged
    );
    assert!(res.converged);

    // Compare with unpreconditioned FGMRES to show why AMG matters here.
    let mut x0 = vec![0.0; a.nrows()];
    let plain = fgmres(
        &a,
        &b,
        &mut x0,
        &famg::krylov::IdentityPrecond,
        &FgmresOptions {
            max_iterations: res.iterations * 10,
            ..opts
        },
    );
    println!(
        "unpreconditioned FGMRES after {}x the iterations: relres {:.2e} (converged: {})",
        10, plain.final_relres, plain.converged
    );
}

//! Solve a user-provided Matrix Market system with AMG — the downstream
//! "bring your own matrix" entry point.
//!
//! ```sh
//! cargo run --release --example solve_matrix_market -- path/to/A.mtx
//! ```
//!
//! Without an argument, writes and solves a built-in demo problem so the
//! example is runnable out of the box.

use famg::core::{AmgConfig, AmgSolver};
use famg::matgen::{laplace3d_7pt, mmio, rhs};

fn main() {
    let arg = std::env::args().nth(1);
    let a = if let Some(path) = &arg {
        println!("loading {path}");
        mmio::load_matrix_market(path).expect("failed to read Matrix Market file")
    } else {
        let demo = std::env::temp_dir().join("famg_demo.mtx");
        let a = laplace3d_7pt(24, 24, 24);
        mmio::save_matrix_market(&a, &demo).expect("write demo");
        println!(
            "no file given; wrote and loaded a demo 3D Laplacian at {}",
            demo.display()
        );
        mmio::load_matrix_market(&demo).unwrap()
    };
    assert_eq!(a.nrows(), a.ncols(), "need a square system");
    println!("matrix: {} rows, {} nnz", a.nrows(), a.nnz());

    let b = rhs::ones(a.nrows());
    let solver = AmgSolver::setup(&a, &AmgConfig::single_node_paper());
    println!(
        "AMG setup: {} levels, operator complexity {:.2}",
        solver.hierarchy().num_levels(),
        solver.hierarchy().stats.operator_complexity()
    );
    let mut x = vec![0.0; a.nrows()];
    let res = solver.solve(&b, &mut x);
    println!(
        "{} after {} V-cycles (relative residual {:.2e})",
        if res.converged {
            "converged"
        } else {
            "NOT converged"
        },
        res.iterations,
        res.final_relres
    );
    if !res.converged {
        println!("hint: try AMG as an FGMRES preconditioner (see the reservoir example)");
        std::process::exit(1);
    }
}

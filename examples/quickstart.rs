//! Quickstart: solve a 2D Poisson problem with standalone AMG.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use famg::core::{AmgConfig, AmgSolver};
use famg::matgen::{laplace2d, rhs};

fn main() {
    // -Δu = 1 on a 512x512 grid, homogeneous Dirichlet boundary.
    let a = laplace2d(512, 512);
    let b = rhs::ones(a.nrows());
    println!("problem: {} unknowns, {} non-zeros", a.nrows(), a.nnz());

    // The paper's Table 3 settings: PMIS coarsening, extended+i
    // interpolation with (0.1, 4) truncation, hybrid Gauss-Seidel,
    // V-cycles to a 1e-7 relative residual.
    let cfg = AmgConfig::single_node_paper();
    let solver = AmgSolver::setup(&a, &cfg);
    let h = solver.hierarchy();
    println!(
        "hierarchy: {} levels, operator complexity {:.2}, grid complexity {:.2}",
        h.num_levels(),
        h.stats.operator_complexity(),
        h.stats.grid_complexity()
    );
    for (l, (rows, nnz)) in h
        .stats
        .level_rows
        .iter()
        .zip(&h.stats.level_nnz)
        .enumerate()
    {
        println!("  level {l}: {rows} rows, {nnz} nnz");
    }

    let mut x = vec![0.0; a.nrows()];
    let result = solver.solve(&b, &mut x);
    println!(
        "solved in {} V-cycles, final relative residual {:.2e}",
        result.iterations, result.final_relres
    );
    assert!(result.converged);

    // Convergence history: the per-cycle residual reduction factor.
    let mut prev = 1.0;
    for (k, r) in result.history.iter().enumerate() {
        println!(
            "  cycle {:>2}: relres {:.3e}  (factor {:.3})",
            k + 1,
            r,
            r / prev
        );
        prev = *r;
    }
    println!(
        "setup {:.1} ms, solve {:.1} ms",
        h.times.setup_total().as_secs_f64() * 1e3,
        result.times.solve_total().as_secs_f64() * 1e3
    );
}

//! Compares the paper's interpolation schemes on one problem: standard
//! PMIS + extended+i (`ei(4)`) versus aggressive coarsening with
//! multipass (`mp`) and 2-stage extended+i (`2s-ei(444)`).
//!
//! Shows the paper's central trade-off: aggressive coarsening cuts
//! operator complexity and setup cost, multipass converges slower, and
//! 2-stage extended+i recovers most of the convergence at higher
//! interpolation-construction cost.
//!
//! ```sh
//! cargo run --release --example interp_comparison
//! ```

use famg::core::{AmgConfig, AmgSolver};
use famg::matgen::{amg2013_like, rhs};

fn main() {
    let a = amg2013_like(32, 32, 32, 2, 2.0, 11);
    let b = rhs::ones(a.nrows());
    println!(
        "problem: AMG2013-like, {} unknowns, {} nnz\n",
        a.nrows(),
        a.nnz()
    );
    println!(
        "{:<12} {:>7} {:>7} {:>8} {:>10} {:>10} {:>10}",
        "scheme", "levels", "opcx", "iters", "setup", "solve", "total"
    );
    for (name, cfg) in [
        ("ei(4)", AmgConfig::multi_node_ei4()),
        ("mp", AmgConfig::multi_node_mp()),
        ("2s-ei(444)", AmgConfig::multi_node_2s_ei444()),
    ] {
        let solver = AmgSolver::setup(&a, &cfg);
        let mut x = vec![0.0; a.nrows()];
        let res = solver.solve(&b, &mut x);
        assert!(res.converged, "{name} did not converge");
        let h = solver.hierarchy();
        println!(
            "{:<12} {:>7} {:>7.2} {:>8} {:>9.1}ms {:>9.1}ms {:>9.1}ms",
            name,
            h.num_levels(),
            h.stats.operator_complexity(),
            res.iterations,
            h.times.setup_total().as_secs_f64() * 1e3,
            res.times.solve_total().as_secs_f64() * 1e3,
            (h.times.setup_total() + res.times.solve_total()).as_secs_f64() * 1e3,
        );
    }
    println!("\nExpected shape (paper §5.3): mp has the cheapest setup, ei(4) the");
    println!("fewest iterations; 2s-ei(444) trades interpolation-construction time");
    println!("for a smaller operator and competitive convergence.");
}

//! Distributed AMG on the simulated message-passing runtime: weak-scales
//! a 3D Laplacian over 1, 2 and 4 ranks and reports setup/solve times,
//! iteration counts, and measured communication volume, including the
//! per-level, per-phase bytes/messages breakdown (the paper's §4.3/§5.4
//! comm-volume view).
//!
//! ```sh
//! cargo run --release --example distributed_weak_scaling
//! ```

use famg::core::AmgConfig;
use famg::dist::comm::run_ranks;
use famg::dist::hierarchy::{DistHierarchy, DistOptFlags};
use famg::dist::parcsr::{default_partition, ParCsr};
use famg::dist::solve::dist_fgmres_amg;
use famg::matgen::{laplace3d_27pt, rhs};

fn main() {
    let per_rank = 20usize; // 20^3 rows per rank
    println!("weak scaling a 27-point 3D Laplacian, {per_rank}^3 rows/rank\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>6} {:>14} {:>10}",
        "ranks", "rows", "setup", "solve", "iters", "comm bytes", "comm msgs"
    );
    let mut tables = Vec::new();
    for nranks in [1usize, 2, 4] {
        let a = laplace3d_27pt(per_rank, per_rank, per_rank * nranks);
        let n = a.nrows();
        let b = rhs::ones(n);
        let starts = default_partition(n, nranks);
        let cfg = AmgConfig::multi_node_ei4();
        let (parts, report) = run_ranks(nranks, |c| {
            let r = c.rank();
            // Each rank owns a contiguous slab of rows (Fig. 3a layout).
            let pa = ParCsr::from_global_rows(&a, starts[r], starts[r + 1], starts.clone(), r);
            let h = DistHierarchy::build(c, pa, &cfg, DistOptFlags::all());
            let bl = b[starts[r]..starts[r + 1]].to_vec();
            let mut xl = vec![0.0; bl.len()];
            let res = dist_fgmres_amg(c, &h, &bl, &mut xl, 1e-7, 200, 50);
            assert!(res.converged);
            (
                h.times.setup_total() + h.setup_comm_time,
                res.times.solve_total() + res.solve_comm_time,
                res.iterations,
            )
        });
        let setup = parts.iter().map(|p| p.0).max().unwrap();
        let solve = parts.iter().map(|p| p.1).max().unwrap();
        println!(
            "{:>6} {:>10} {:>9.1}ms {:>9.1}ms {:>6} {:>14} {:>10}",
            nranks,
            n,
            setup.as_secs_f64() * 1e3,
            solve.as_secs_f64() * 1e3,
            parts[0].2,
            report.total_bytes(),
            report.total_messages()
        );
        tables.push((nranks, report.scope_table()));
    }
    for (nranks, table) in tables {
        println!("\nper-level comm volume, {nranks} ranks:");
        print!("{table}");
    }
    println!("\nFor ideal weak scaling times stay flat; communication grows with");
    println!("the halo surface. Compare `--bin fig6_weak_scaling` for the full");
    println!("three-scheme version of this experiment.");
}

//! # famg — High-performance algebraic multigrid in Rust
//!
//! A from-scratch reproduction of *"High-Performance Algebraic Multigrid
//! Solver Optimized for Multi-Core Based Distributed Parallel Systems"*
//! (Park, Smelyanskiy, Yang, Mudigere, Dubey — SC '15): a classical
//! (BoomerAMG-style) AMG solver with the paper's multi-core and
//! multi-node optimizations, plus the substrates it depends on.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`sparse`] — CSR kernels: SpMV, SpGEMM, transpose, triple products.
//! * [`core`] — the AMG solver: PMIS coarsening, extended+i / multipass
//!   interpolation, hybrid Gauss-Seidel smoothing, V-cycles.
//! * [`krylov`] — flexible GMRES and CG with an AMG preconditioner.
//! * [`dist`] — a simulated message-passing runtime and distributed
//!   (ParCSR) AMG reproducing the paper's multi-node optimizations.
//! * [`matgen`] — problem generators for every workload in the paper's
//!   evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use famg::core::{AmgConfig, AmgSolver};
//! use famg::matgen::laplace2d;
//!
//! let a = laplace2d(64, 64);
//! let b = vec![1.0; a.nrows()];
//! let solver = AmgSolver::setup(&a, &AmgConfig::default());
//! let result = solver.solve(&b, &mut vec![0.0; a.nrows()]);
//! assert!(result.converged);
//! ```

pub use famg_check as check;
pub use famg_core as core;
pub use famg_dist as dist;
pub use famg_krylov as krylov;
pub use famg_matgen as matgen;
pub use famg_sparse as sparse;

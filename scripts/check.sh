#!/usr/bin/env bash
# famg CI gate: formatting, lints, tests, and validated-mode solves.
#
# Everything here must pass before a change merges. Runs offline — the
# workspace vendors its dependency shims, so no registry access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (base)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (validate)"
cargo clippy --workspace --all-targets --features validate -- -D warnings

echo "==> cargo test (base)"
cargo test --workspace -q

echo "==> cargo test (validate: hierarchy invariants checked at every level)"
cargo test --workspace -q --features validate

echo "==> all checks passed"

#!/usr/bin/env bash
# famg CI gate: formatting, lints, tests, and validated-mode solves.
#
# Everything here must pass before a change merges. Runs offline — the
# workspace vendors its dependency shims, so no registry access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (base)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (validate)"
cargo clippy --workspace --all-targets --features validate -- -D warnings

echo "==> cargo test (base, serial pool: RAYON_NUM_THREADS=1)"
RAYON_NUM_THREADS=1 cargo test --workspace -q

echo "==> cargo test (base, parallel pool: RAYON_NUM_THREADS=4)"
RAYON_NUM_THREADS=4 cargo test --workspace -q

echo "==> cargo test (validate, serial pool: RAYON_NUM_THREADS=1)"
RAYON_NUM_THREADS=1 cargo test --workspace -q --features validate

echo "==> cargo test (validate, parallel pool: RAYON_NUM_THREADS=4)"
RAYON_NUM_THREADS=4 cargo test --workspace -q --features validate

echo "==> comm-volume regression test (release)"
cargo test -q --release --test comm_volume

echo "==> comm-volume bench smoke (asserts vs dense-alltoall baseline)"
cargo run -q --release -p famg-bench --bin comm_volume -- --smoke

echo "==> numeric-refresh regression test (release)"
cargo test -q --release --test setup_refresh

echo "==> numeric-refresh bench smoke (asserts refresh >= 2x full setup)"
cargo run -q --release -p famg-bench --bin setup_refresh -- --smoke

echo "==> all checks passed"

#!/usr/bin/env bash
# famg CI gate: formatting, lints, tests, and validated-mode solves.
#
# Everything here must pass before a change merges. Runs offline — the
# workspace vendors its dependency shims, so no registry access is needed.
#
# Usage: check.sh [--fast]
#   --fast   formatting, clippy, famg-lint, and the base test suite only;
#            skips the validate-feature matrix, the model checker, and the
#            release-mode regression/bench stages. For inner-loop edits —
#            a merge still requires the full run.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
    --fast) FAST=1 ;;
    *)
        echo "usage: $0 [--fast]" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (base)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> famg-lint (unsafe/ordering/hashmap/wallclock audit)"
cargo run -q -p famg-check --bin famg-lint

echo "==> famg-analyze (solve-path invariants: no-alloc, no-panic, blessed reductions)"
cargo run -q -p famg-analyze --bin famg-analyze

echo "==> cargo test (base, serial pool: RAYON_NUM_THREADS=1)"
RAYON_NUM_THREADS=1 cargo test --workspace -q

echo "==> cargo test (base, parallel pool: RAYON_NUM_THREADS=4)"
RAYON_NUM_THREADS=4 cargo test --workspace -q

# The distributed kernels run with halo overlap on by default
# (DistOptFlags::default reads FAMG_OVERLAP_COMM); the workspace runs
# above covered overlap on, this covers the synchronous path. Results
# are bitwise identical by contract (tests/halo_overlap.rs).
echo "==> dist suite with halo overlap disabled (FAMG_OVERLAP_COMM=0)"
FAMG_OVERLAP_COMM=0 cargo test -q -p famg-dist
FAMG_OVERLAP_COMM=0 cargo test -q --test halo_overlap

if [[ "$FAST" == "1" ]]; then
    echo "==> fast mode: skipping validate matrix, famg-model, and release stages"
    echo "==> all fast checks passed"
    exit 0
fi

echo "==> cargo clippy (validate)"
cargo clippy --workspace --all-targets --features validate -- -D warnings

echo "==> cargo test (validate, serial pool: RAYON_NUM_THREADS=1)"
RAYON_NUM_THREADS=1 cargo test --workspace -q --features validate

echo "==> cargo test (validate, parallel pool: RAYON_NUM_THREADS=4)"
RAYON_NUM_THREADS=4 cargo test --workspace -q --features validate

# Exhaustive interleaving exploration of the pool shim's lock-free latch,
# help-while-waiting, wakeup, and panic protocols, plus the model crate's
# own self-tests. Bounds (<= 3 modeled threads, preemption bound 2; see
# shims/rayon/src/model_tests.rs) keep the whole stage well under a minute.
echo "==> famg-model (pool shim interleaving model checks)"
RUSTFLAGS="--cfg famg_model" cargo test -q -p famg-rayon-shim --lib -- --test-threads=1
cargo test -q -p famg-model

echo "==> comm-volume regression test (release)"
cargo test -q --release --test comm_volume

echo "==> halo overlap regression test (release, bitwise on-vs-off)"
cargo test -q --release --test halo_overlap

echo "==> comm-volume bench smoke (asserts vs dense-alltoall baseline,"
echo "    and overlap exposed-wait fraction < synchronous)"
cargo run -q --release -p famg-bench --bin comm_volume -- --smoke --out target/bench

echo "==> numeric-refresh regression test (release)"
cargo test -q --release --test setup_refresh

echo "==> numeric-refresh bench smoke (asserts refresh >= 2x full setup)"
cargo run -q --release -p famg-bench --bin setup_refresh -- --smoke --out target/bench

echo "==> multi-RHS regression test (release, batch-vs-solo bitwise)"
cargo test -q --release --test multi_rhs

echo "==> multi-RHS bench smoke (asserts k=8 per-RHS >= 1.3x solo and"
echo "    k-independent message counts)"
cargo run -q --release -p famg-bench --bin multi_rhs -- --smoke --out target/bench

# Profiler off: every probe must compile to a unit type; the solve paths
# still build and pass their suites with zero timing reads.
echo "==> famg-prof disabled build (--no-default-features)"
cargo build -q -p famg-core -p famg-dist --no-default-features
RAYON_NUM_THREADS=4 cargo test -q -p famg-core --no-default-features

# Telemetry: the smoke benches above (plus thread_scaling here) wrote
# BENCH_*.json into target/bench; each must validate against schema v1
# and stay within 1.25x of the committed baseline on the
# machine-independent fields (iterations, complexity, flop/comm
# counters — wall-clock is informational, see DESIGN.md §8).
echo "==> famg-prof telemetry (schema + regression gate vs results/)"
cargo run -q --release -p famg-bench --bin thread_scaling -- --smoke --out target/bench
for name in thread_scaling comm_volume setup_refresh multi_rhs; do
    cargo run -q -p famg-check --bin famg-bench-check -- \
        "target/bench/BENCH_${name}.json" "results/BENCH_${name}.json"
done

# Machine-readable audit artifacts (famg-diag-v1, same schema for both
# tools) land next to the bench telemetry for CI log collection.
echo "==> audit artifacts (famg-diag-v1 JSON -> target/bench)"
mkdir -p target/bench
cargo run -q -p famg-check --bin famg-lint -- --format json >target/bench/DIAG_famg-lint.json
cargo run -q -p famg-analyze --bin famg-analyze -- --format json >target/bench/DIAG_famg-analyze.json

echo "==> all checks passed"
